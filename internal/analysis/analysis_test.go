package analysis

import (
	"strings"
	"testing"

	"autodist/internal/bytecode"
	"autodist/internal/compile"
	"autodist/internal/graph"
)

// bankSource mirrors the paper's running example (§2.1, Figures 2–4).
const bankSource = `
class Account {
	int id;
	string name;
	int savings;
	int checking;
	int loan;
	Account(int id, string name, int savings, int checking, int loan) {
		this.id = id; this.name = name; this.savings = savings;
		this.checking = checking; this.loan = loan;
	}
	int getId() { return this.id; }
	int getSavings() { return this.savings; }
	int getBalance() { return this.savings + this.checking; }
	void setBalance(int b) { this.savings = b; }
}
class Bank {
	string name;
	int numCustomers;
	Vector accounts;
	Bank(string name, int numCustomers, int initialBalance) {
		this.name = name;
		this.numCustomers = numCustomers;
		this.accounts = new Vector();
		this.initializeAccounts(initialBalance);
	}
	void initializeAccounts(int initialBalance) {
		int n = this.numCustomers;
		while (n > 0) {
			Account a = new Account(n, "cust" + n, initialBalance, 0, 0);
			this.accounts.add(a);
			n--;
		}
	}
	void openAccount(Account a) { this.accounts.add(a); }
	Account getCustomer(int customerID) {
		for (int i = 0; i < this.accounts.size(); i++) {
			Account a = (Account) this.accounts.get(i);
			if (a.getId() == customerID) { return a; }
		}
		return null;
	}
	boolean withdraw(int customerID, int amount) {
		Account a = this.getCustomer(customerID);
		if (a != null) {
			a.setBalance(a.getBalance() - amount);
			return true;
		} else { return false; }
	}
	static void main() {
		Bank merchants = new Bank("Merchants", 100, 10000);
		Account a4 = new Account(1, "ABC Market", 1000000, 100000, 20000000);
		Account a5 = new Account(2, "CDE Outlet", 5000000, 300000, 150000000);
		merchants.openAccount(a4);
		merchants.openAccount(a5);
		Account a = merchants.getCustomer(2);
		merchants.withdraw(a.getId(), 900);
	}
}
`

func compileBank(t *testing.T) *bytecode.Program {
	t.Helper()
	bp, _, err := compile.CompileSource(bankSource)
	if err != nil {
		t.Fatal(err)
	}
	return bp
}

func TestCallGraphReachability(t *testing.T) {
	bp := compileBank(t)
	cg, err := BuildCallGraph(bp)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []MethodID{
		{"Bank", "main", "()V"},
		{"Bank", "<init>", "(TII)V"},
		{"Bank", "initializeAccounts", "(I)V"},
		{"Bank", "openAccount", "(LAccount;)V"},
		{"Bank", "getCustomer", "(I)LAccount;"},
		{"Bank", "withdraw", "(II)Z"},
		{"Account", "<init>", "(ITIII)V"},
		{"Account", "getBalance", "()I"},
		{"Vector", "add", "(LObject;)V"},
		{"Vector", "grow", "()V"},
	} {
		if !cg.Reachable[want] {
			t.Errorf("method %v not reachable", want)
		}
	}
	for _, cls := range []string{"Bank", "Account", "Vector"} {
		if !cg.Instantiated[cls] {
			t.Errorf("class %s not instantiated", cls)
		}
	}
	// getSavings is reachable (called in the paper's Figure 8
	// context) — actually in this source it is not called; check a
	// truly-unreachable control instead:
	dead := MethodID{"Account", "nosuch", "()V"}
	if cg.Reachable[dead] {
		t.Error("phantom method reachable")
	}
}

func TestRTADispatchOnlyInstantiated(t *testing.T) {
	src := `
class Shape { int area() { return 0; } }
class Circle extends Shape { int area() { return 3; } }
class Square extends Shape { int area() { return 4; } }
class Main {
	static void main() {
		Shape s = new Circle();
		System.println("" + s.area());
	}
}`
	bp, _, err := compile.CompileSource(src)
	if err != nil {
		t.Fatal(err)
	}
	cg, err := BuildCallGraph(bp)
	if err != nil {
		t.Fatal(err)
	}
	if !cg.Reachable[MethodID{"Circle", "area", "()I"}] {
		t.Error("Circle.area should be reachable")
	}
	if cg.Reachable[MethodID{"Square", "area", "()I"}] {
		t.Error("Square.area should NOT be reachable (never instantiated)")
	}
	if cg.Instantiated["Square"] {
		t.Error("Square should not be instantiated")
	}
}

func TestCRGRelations(t *testing.T) {
	bp := compileBank(t)
	cg, err := BuildCallGraph(bp)
	if err != nil {
		t.Fatal(err)
	}
	crg, err := BuildCRG(bp, cg)
	if err != nil {
		t.Fatal(err)
	}
	has := func(from, to ClassNode, kind graph.EdgeKind, typeName string) bool {
		for _, r := range crg.Relations {
			if r.From == from && r.To == to && r.Kind == kind &&
				(typeName == "" || r.TypeName == typeName) {
				return true
			}
		}
		return false
	}
	st := func(c string) ClassNode { return ClassNode{c, true} }
	dt := func(c string) ClassNode { return ClassNode{c, false} }

	// Figure 3's key relations:
	// main (ST Bank) uses DT Bank and DT Account.
	if !has(st("Bank"), dt("Bank"), graph.KindUse, "") {
		t.Error("missing use: ST_Bank → DT_Bank")
	}
	if !has(st("Bank"), dt("Account"), graph.KindUse, "") {
		t.Error("missing use: ST_Bank → DT_Account")
	}
	// Export edge from openAccount(Account) invocation.
	if !has(st("Bank"), dt("Bank"), graph.KindExport, "Account") {
		t.Error("missing export: ST_Bank → DT_Bank (Account)")
	}
	// Import edge from getCustomer returning Account.
	if !has(dt("Bank"), st("Bank"), graph.KindImport, "Account") {
		t.Error("missing import: DT_Bank → ST_Bank (Account)")
	}
	// Bank instances use Vector and Account.
	if !has(dt("Bank"), dt("Vector"), graph.KindUse, "") {
		t.Error("missing use: DT_Bank → DT_Vector")
	}
	if !has(dt("Bank"), dt("Account"), graph.KindUse, "") {
		t.Error("missing use: DT_Bank → DT_Account")
	}
	if crg.Graph.NumVertices() == 0 || crg.Graph.NumEdges() == 0 {
		t.Error("CRG graph empty")
	}
	// Weights must be 3-dimensional resource vectors.
	if crg.Graph.Dims() != 3 {
		t.Errorf("CRG weight dims = %d, want 3", crg.Graph.Dims())
	}
}

func TestODGBankShape(t *testing.T) {
	bp := compileBank(t)
	res, err := Analyze(bp)
	if err != nil {
		t.Fatal(err)
	}
	odg := res.ODG

	labels := map[string]bool{}
	for _, v := range odg.Graph.Vertices() {
		labels[v.Label] = true
	}
	// Figure 4's object population: a single Bank instance, single
	// Account instances from main, a summary Account from the
	// initializeAccounts loop, the Vector instance and static main
	// context.
	if !labels["ST_Bank"] {
		t.Errorf("missing ST_Bank node; have %v", labels)
	}
	if !labels["1Bank"] {
		t.Errorf("missing 1Bank node; have %v", labels)
	}
	if !labels["1Vector"] {
		t.Errorf("missing 1Vector; have %v", labels)
	}
	// The loop-allocated Account must be a summary (*) node; the
	// main-allocated ones single (1).
	var summaries, singles int
	for _, s := range odg.Sites {
		if s.Allocated != "Account" {
			continue
		}
		if s.Summary {
			summaries++
		} else {
			singles++
		}
	}
	if summaries != 1 {
		t.Errorf("summary Account sites = %d, want 1 (loop in initializeAccounts)", summaries)
	}
	if singles != 2 {
		t.Errorf("single Account sites = %d, want 2 (a4, a5 in main)", singles)
	}

	// Create edges: ST_Bank creates 1Bank; 1Bank creates *Account and
	// 1Vector.
	find := func(fromLabel, toLabel string, kind graph.EdgeKind) bool {
		for _, e := range odg.Graph.Edges() {
			f := odg.Graph.Vertex(e.From).Label
			tt := odg.Graph.Vertex(e.To).Label
			if f == fromLabel && tt == toLabel && e.Kind == kind {
				return true
			}
		}
		return false
	}
	if !find("ST_Bank", "1Bank", graph.KindCreate) {
		t.Error("missing create: ST_Bank → 1Bank")
	}
	if !find("1Bank", "1Vector", graph.KindCreate) {
		t.Error("missing create: 1Bank → 1Vector")
	}

	// Propagation: the Accounts opened in main must become reachable
	// from the Bank instance (export through openAccount), yielding a
	// use edge 1Bank → 1Account/x.
	foundUse := false
	for _, e := range odg.Graph.Edges() {
		f := odg.Graph.Vertex(e.From).Label
		tt := odg.Graph.Vertex(e.To).Label
		if f == "1Bank" && strings.HasPrefix(tt, "1Account") && e.Kind == graph.KindUse {
			foundUse = true
		}
	}
	if !foundUse {
		t.Errorf("export propagation failed: no use edge 1Bank → 1Account/*\n%s", dumpEdges(odg))
	}
}

func dumpEdges(odg *ODG) string {
	var b strings.Builder
	for _, e := range odg.Graph.Edges() {
		b.WriteString(odg.Graph.Vertex(e.From).Label + " -" + e.Kind.String() + "-> " + odg.Graph.Vertex(e.To).Label + "\n")
	}
	return b.String()
}

func TestSummaryPropagatesToChildren(t *testing.T) {
	// Objects allocated (outside any loop) by a summary creator must
	// themselves be summaries.
	src := `
class Inner {}
class Outer {
	Inner inner;
	Outer() { this.inner = new Inner(); }
}
class Main {
	static void main() {
		for (int i = 0; i < 3; i++) {
			Outer o = new Outer();
		}
	}
}`
	bp, _, err := compile.CompileSource(src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Analyze(bp)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range res.ODG.Sites {
		if !s.Summary {
			t.Errorf("site %v should be summary (loop creator)", s.Key)
		}
	}
}

func TestSummaryNodesWeighHeavier(t *testing.T) {
	src := `
class Thing { int a; int b; }
class Main {
	static void main() {
		Thing one = new Thing();
		for (int i = 0; i < 5; i++) {
			Thing many = new Thing();
		}
	}
}`
	bp, _, err := compile.CompileSource(src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Analyze(bp)
	if err != nil {
		t.Fatal(err)
	}
	var oneW, manyW int64
	for _, s := range res.ODG.Sites {
		v := res.ODG.Graph.Vertex(s.Node)
		if s.Summary {
			manyW = v.Weights[0]
		} else {
			oneW = v.Weights[0]
		}
	}
	if manyW <= oneW {
		t.Errorf("summary weight %d not heavier than single %d", manyW, oneW)
	}
}

func TestAnalyzeTimingsPopulated(t *testing.T) {
	bp := compileBank(t)
	res, err := Analyze(bp)
	if err != nil {
		t.Fatal(err)
	}
	if res.CRGTime <= 0 || res.ODGTime <= 0 {
		t.Errorf("timings not recorded: crg=%v odg=%v", res.CRGTime, res.ODGTime)
	}
}

func TestNoMainClassFails(t *testing.T) {
	p := bytecode.NewProgram()
	if _, err := BuildCallGraph(p); err == nil {
		t.Error("expected error for program without main")
	}
}

func TestSiteLookupForRewriter(t *testing.T) {
	bp := compileBank(t)
	res, err := Analyze(bp)
	if err != nil {
		t.Fatal(err)
	}
	// Every NEW instruction in reachable code must resolve to a site.
	main := bp.Class("Bank").Method("main", "()V")
	found := 0
	for pc, in := range main.Code {
		if in.Op == bytecode.NEW {
			key := SiteKey{"Bank", "main", "()V", pc}
			if res.ODG.SiteAt[key] == nil {
				t.Errorf("no site for NEW at pc %d", pc)
			} else {
				found++
			}
		}
	}
	if found != 3 { // Bank, Account a4, Account a5
		t.Errorf("found %d NEW sites in main, want 3", found)
	}
}

func TestVCGExportOfGraphs(t *testing.T) {
	bp := compileBank(t)
	res, err := Analyze(bp)
	if err != nil {
		t.Fatal(err)
	}
	var crgOut, odgOut strings.Builder
	if err := res.CRG.Graph.VCG(&crgOut); err != nil {
		t.Fatal(err)
	}
	if err := res.ODG.Graph.VCG(&odgOut); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(crgOut.String(), "DT_Bank") {
		t.Error("CRG VCG missing DT_Bank")
	}
	if !strings.Contains(odgOut.String(), "1Bank") {
		t.Error("ODG VCG missing 1Bank")
	}
}
