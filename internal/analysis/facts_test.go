package analysis_test

import (
	"testing"

	"autodist/internal/analysis"
	"autodist/internal/compile"
)

func factsFor(t *testing.T, src string) *analysis.Facts {
	t.Helper()
	bp, _, err := compile.CompileSource(src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := analysis.Analyze(bp)
	if err != nil {
		t.Fatal(err)
	}
	if res.Facts == nil {
		t.Fatal("Analyze did not populate Facts")
	}
	return res.Facts
}

const factsSource = `
class Config {
	int size;
	string name;
	int[] params;
	Counter counter;
	Config(int size, string name) {
		this.size = size;
		this.name = name;
		this.params = new int[4];
		this.counter = new Counter();
	}
	int getSize() { return this.size; }
}
class Counter {
	int count;
	int rewrites;
	void bump(int n) { this.count += n; }
	void bumpOther(Counter other) { other.rewrites = other.rewrites + 1; }
	void report() { System.println("count=" + this.count); }
	void alloc() { Counter c = new Counter(); this.count += c.count; }
}
class Wrapper {
	Counter inner;
	int reads;
	Wrapper() { this.inner = new Counter(); }
	void poke(int n) { this.inner.bump(n); }
	void peek() { this.reads = this.inner.count; }
	void stat(int n) { Shared.total = Shared.total + n; }
}
class Shared {
	static int total;
}
class Main {
	static void main() {
		Config cfg = new Config(8, "x");
		Counter c = new Counter();
		c.bump(2);
		c.bumpOther(c);
		c.report();
		c.alloc();
		Wrapper w = new Wrapper();
		w.poke(1);
		w.peek();
		w.stat(1);
		System.println("" + (cfg.getSize() + c.count + w.reads + Shared.total));
	}
}
`

func TestFieldImmutability(t *testing.T) {
	f := factsFor(t, factsSource)
	cases := []struct {
		cls, name, desc string
		want            bool
	}{
		// Written only in the constructor through this.
		{"Config", "size", "I", true},
		{"Config", "name", "T", true},
		// Constructor-only but array-typed: contents copy semantics
		// exclude it from caching.
		{"Config", "params", "[I", false},
		// Constructor-only object reference: cacheable.
		{"Config", "counter", "LCounter;", true},
		// Written outside constructors.
		{"Counter", "count", "I", false},
		// Written through a non-this receiver, even if the writer is
		// never a constructor.
		{"Counter", "rewrites", "I", false},
		{"Wrapper", "reads", "I", false},
		// Never written at all after construction.
		{"Wrapper", "inner", "LCounter;", true},
	}
	for _, c := range cases {
		if got := f.FieldImmutable(c.cls, c.name, c.desc); got != c.want {
			t.Errorf("FieldImmutable(%s.%s %s) = %v, want %v", c.cls, c.name, c.desc, got, c.want)
		}
	}
}

func TestAsyncConfinement(t *testing.T) {
	f := factsFor(t, factsSource)
	cases := []struct {
		cls, name, desc string
		want            bool
	}{
		// Touches only this-fields with a primitive parameter.
		{"Counter", "bump", "(I)V", true},
		// Writes a foreign receiver's field.
		{"Counter", "bumpOther", "(LCounter;)V", false},
		// Prints (System native).
		{"Counter", "report", "()V", false},
		// Allocates (the site could map to another node).
		{"Counter", "alloc", "()V", false},
		// Calls a confined method through a this-field receiver:
		// confined, with the field class in the touch set.
		{"Wrapper", "poke", "(I)V", true},
		// Reads a field of a this-field receiver (not this).
		{"Wrapper", "peek", "()V", false},
		// Touches statics.
		{"Wrapper", "stat", "(I)V", false},
	}
	for _, c := range cases {
		_, got := f.AsyncConfined(c.cls, c.name, c.desc)
		if got != c.want {
			t.Errorf("AsyncConfined(%s.%s%s) = %v, want %v", c.cls, c.name, c.desc, got, c.want)
		}
	}
	touch, ok := f.AsyncConfined("Wrapper", "poke", "(I)V")
	if !ok {
		t.Fatal("poke not confined")
	}
	found := false
	for _, c := range touch {
		if c == "Counter" {
			found = true
		}
	}
	if !found {
		t.Errorf("poke touch set %v missing Counter", touch)
	}
}

func TestAsyncConfinementOverrides(t *testing.T) {
	// A call through a supertype is only async-safe if every override
	// is confined.
	src := `
class Base { void tick(int n) { } }
class Quiet extends Base { int t; void tick(int n) { this.t += n; } }
class Loud extends Base { void tick(int n) { System.println("tick"); } }
class Main {
	static void main() {
		Base a = new Quiet();
		Base b = new Loud();
		a.tick(1);
		b.tick(1);
	}
}`
	f := factsFor(t, src)
	if _, ok := f.AsyncConfined("Base", "tick", "(I)V"); ok {
		t.Error("call through Base must not be async: Loud.tick prints")
	}
	if _, ok := f.AsyncConfined("Quiet", "tick", "(I)V"); ok {
		// Quiet's subclass set is {Quiet} only; this should be confined.
		t.Log("note: Quiet.tick confined as expected")
	} else {
		t.Error("Quiet.tick should be confined")
	}
}

func TestEscapingConstructorDisablesFieldCaching(t *testing.T) {
	// A constructor that lets `this` escape (here: registering itself
	// with another object before initialising a field) can expose the
	// half-constructed object to a remote node; its fields must not
	// be treated as cacheable even though they are only written in
	// the constructor through this.
	src := `
class Registry {
	Item last;
	void register(Item it) { this.last = it; }
}
class Item {
	int id;
	Item(Registry r, int id) {
		r.register(this);
		this.id = id;
	}
}
class Plain {
	int id;
	Plain(int id) { this.id = id; }
}
class Main {
	static void main() {
		Registry r = new Registry();
		Item a = new Item(r, 7);
		Plain p = new Plain(8);
		System.println("" + (a.id + p.id));
	}
}`
	f := factsFor(t, src)
	if f.FieldImmutable("Item", "id", "I") {
		t.Error("Item.id cacheable despite this escaping Item's constructor")
	}
	if !f.FieldImmutable("Plain", "id", "I") {
		t.Error("Plain.id should stay cacheable (no escape)")
	}
}

func TestConstructorHelperCallDisablesFieldCaching(t *testing.T) {
	// Calling a non-constructor method on this during construction is
	// treated as an escape (the helper could forward this outward).
	src := `
class Gadget {
	int serial;
	Gadget(int s) { this.setup(s); }
	void setup(int s) { this.serial = s; }
}
class Main {
	static void main() {
		Gadget g = new Gadget(4);
		System.println("" + g.serial);
	}
}`
	f := factsFor(t, src)
	if f.FieldImmutable("Gadget", "serial", "I") {
		t.Error("Gadget.serial cacheable despite constructor helper call on this")
	}
}

func TestCastDoesNotLaunderThisEscape(t *testing.T) {
	// `(Item)this` must still be recognised as this by the escape
	// analysis: a CHECKCAST preserves the reference.
	src := `
class Registry {
	Item last;
	void register(Item it) { this.last = it; }
}
class Item {
	int id;
	Item(Registry r, int id) {
		r.register((Item)this);
		this.id = id;
	}
}
class Main {
	static void main() {
		Registry r = new Registry();
		Item a = new Item(r, 7);
		System.println("" + a.id);
	}
}`
	f := factsFor(t, src)
	if f.FieldImmutable("Item", "id", "I") {
		t.Error("Item.id cacheable despite (Item)this escaping the constructor")
	}
}
