package analysis

import (
	"sort"
	"strings"

	"autodist/internal/bytecode"
)

// This file implements the cheap static facts pass that feeds the
// communication optimisations of the message-exchange layer (paper §5
// argues raw messages expose aggregation/caching/asynchrony
// opportunities; these facts tell the rewriter which accesses may use
// them soundly):
//
//   - write-once fields: an instance field only ever written inside
//     constructors through `this` is immutable after construction, so
//     a remote proxy may cache its value (GetFieldCached);
//   - confined void methods: a void method whose transitive execution
//     provably touches only the receiver object and objects reachable
//     through its fields (never statics, allocations, output natives
//     or foreign receivers) can run as a fire-and-forget asynchronous
//     message (InvokeMethodVoidAsync), provided the partition plan
//     co-locates every class it can touch (checked by the rewriter).
//
// Both facts rest on a small abstract interpretation per method that
// tracks, for every stack slot and local, whether the value is
// definitely `this` or definitely loaded from a field of `this`.

// Abstract receiver values: avOther (unknown), avThis (`this`), or
// "F:<class>" (a class-typed field of `this`).
const (
	avOther = ""
	avThis  = "@"
)

func avField(class string) string { return "F:" + class }

func avFieldClass(av string) (string, bool) {
	if c, ok := strings.CutPrefix(av, "F:"); ok {
		return c, true
	}
	return "", false
}

// fieldKey identifies an instance field by the class named in the
// bytecode field reference and the field name.
type fieldKey struct {
	Class, Name string
}

// Facts is the static facts pass result, exported on analysis.Result.
type Facts struct {
	prog *bytecode.Program

	// mutated records fields observed written outside
	// constructor-on-this contexts in reachable code.
	mutated map[fieldKey]bool

	// notConfined memoizes methods proven unsafe for asynchronous
	// execution (the safe direction is recomputed per query, which
	// keeps cyclic call chains sound).
	notConfined map[MethodID]bool

	// notReadOnly memoizes methods proven unsafe for replica-local
	// execution (same memoization direction as notConfined).
	notReadOnly map[MethodID]bool

	// ctorEscapes records classes whose constructor lets `this`
	// escape before construction completes (passed as an argument,
	// stored into another object, or handed to a non-constructor
	// method): a remote node could then observe — and cache — a
	// field's pre-initialisation value mid-construction.
	ctorEscapes map[string]bool

	// flagsCache memoizes the per-method receiver dataflow.
	flagsCache map[*bytecode.Method]*methodFlow
}

// methodFlow is the receiver dataflow result for one method.
type methodFlow struct {
	// flags[i] is the abstract receiver operand of the field/invoke
	// instruction at index i (avOther elsewhere).
	flags []string
	// thisEscapes reports whether `this` flowed anywhere other than a
	// receiver position: returned, stored, or passed as an argument.
	thisEscapes bool
	// thisCalls reports whether `this` was the receiver of a
	// non-constructor call. For constructor escape analysis that is as
	// bad as an escape (the callee can forward the half-built object
	// outward); for replica-read analysis it is fine, because the
	// callee itself is recursively checked.
	thisCalls bool
}

// BuildFacts runs the facts pass over the reachable methods.
func BuildFacts(p *bytecode.Program, cg *CallGraph) *Facts {
	f := &Facts{
		prog:        p,
		mutated:     map[fieldKey]bool{},
		notConfined: map[MethodID]bool{},
		notReadOnly: map[MethodID]bool{},
		ctorEscapes: map[string]bool{},
		flagsCache:  map[*bytecode.Method]*methodFlow{},
	}
	for _, mid := range cg.ReachableMethods() {
		cf := p.Class(mid.Class)
		if cf == nil {
			continue
		}
		m := cf.Method(mid.Name, mid.Desc)
		if m == nil || m.IsNative() || len(m.Code) == 0 {
			continue
		}
		flow := f.receiverFlags(cf, m)
		if mid.Name == "<init>" && (flow.thisEscapes || flow.thisCalls) {
			f.ctorEscapes[mid.Class] = true
		}
		for pc, in := range m.Code {
			if in.Op != bytecode.PUTFIELD {
				continue
			}
			cls, name, _ := cf.Pool.Ref(uint16(in.A))
			if m.Name == "<init>" && flow.flags[pc] == avThis {
				continue // constructor initialising its own object
			}
			f.mutated[fieldKey{cls, name}] = true
		}
	}
	return f
}

// FieldImmutable reports whether the field (named on class cls with
// descriptor desc in a field reference) is provably never written
// after its object's construction. Array-typed fields are excluded:
// their binding may be final but their contents travel by copy, so a
// cached copy could go stale.
func (f *Facts) FieldImmutable(cls, name, desc string) bool {
	if f == nil {
		return false
	}
	if bytecode.DescKind(desc) == bytecode.DescArray {
		return false
	}
	// A write observed against any class on the same inheritance
	// chain (the rewriter's type precision) invalidates the fact.
	for key := range f.mutated {
		if key.Name == name && (isSubclass(f.prog, key.Class, cls) || isSubclass(f.prog, cls, key.Class)) {
			return false
		}
	}
	// An escaping constructor can expose the half-constructed object
	// to a remote node mid-construction; a cached read taken then
	// would pin the pre-initialisation value, so nothing on that
	// chain is cacheable.
	for esc := range f.ctorEscapes {
		if isSubclass(f.prog, esc, cls) || isSubclass(f.prog, cls, esc) {
			return false
		}
	}
	return true
}

// AsyncConfined reports whether a void call through static type cls
// can be executed as a fire-and-forget asynchronous message, assuming
// the partition plan co-locates the returned touch set. The touch set
// is the sorted list of classes whose instances the call (over every
// possible dispatch target, transitively) may access.
func (f *Facts) AsyncConfined(cls, name, desc string) ([]string, bool) {
	if f == nil {
		return nil, false
	}
	params, ret, err := bytecode.ParseMethodDesc(desc)
	if err != nil || ret != "V" {
		return nil, false
	}
	// Top-level arguments must travel by value: reference parameters
	// would hand the asynchronous callee objects of unknown home, and
	// array parameters have copy-restore semantics the caller could
	// observe synchronously.
	for _, p := range params {
		switch bytecode.DescKind(p) {
		case bytecode.DescInt, bytecode.DescLong, bytecode.DescFloat,
			bytecode.DescBool, bytecode.DescString:
		default:
			return nil, false
		}
	}
	touch := map[string]bool{}
	visited := map[MethodID]bool{}
	if !f.confinedDispatch(cls, name, desc, touch, visited) {
		return nil, false
	}
	out := make([]string, 0, len(touch))
	for c := range touch {
		out = append(out, c)
	}
	sort.Strings(out)
	return out, true
}

// dispatchImpls enumerates every implementation a call through static
// type cls may dispatch to: onSub (optional) observes each possible
// dynamic receiver class, check judges each concrete implementation.
// It reports whether at least one implementation exists and every
// check passed. Both facts passes (confinement and replica-reads)
// share this walker so their dispatch enumeration cannot diverge.
func (f *Facts) dispatchImpls(cls, name, desc string, onSub func(string), check func(MethodID) bool) bool {
	any := false
	for _, sub := range f.prog.Names() {
		if !isSubclass(f.prog, sub, cls) {
			continue
		}
		if onSub != nil {
			onSub(sub)
		}
		impl := declaringMethod(f.prog, MethodID{sub, name, desc})
		if f.prog.Class(impl.Class) == nil || f.prog.Class(impl.Class).Method(name, desc) == nil {
			continue
		}
		any = true
		if !check(impl) {
			return false
		}
	}
	return any
}

// confinedDispatch checks every implementation a call through static
// type cls may dispatch to, accumulating touched classes.
func (f *Facts) confinedDispatch(cls, name, desc string, touch map[string]bool, visited map[MethodID]bool) bool {
	touch[cls] = true
	return f.dispatchImpls(cls, name, desc,
		func(sub string) { touch[sub] = true },
		func(impl MethodID) bool { return f.confinedMethod(impl, touch, visited) })
}

// confinedMethod checks one concrete method body against the
// confinement rules, recursing into callees.
func (f *Facts) confinedMethod(mid MethodID, touch map[string]bool, visited map[MethodID]bool) bool {
	if f.notConfined[mid] {
		return false
	}
	if visited[mid] {
		return true // cycle: no violation found on this path
	}
	visited[mid] = true
	cf := f.prog.Class(mid.Class)
	if cf == nil {
		return f.fail(mid)
	}
	m := cf.Method(mid.Name, mid.Desc)
	if m == nil {
		return f.fail(mid)
	}
	if m.IsNative() {
		// Only the pure maths/string natives are safe; System (I/O,
		// clocks) is not.
		if mid.Class == "Math" || mid.Class == "Str" {
			return true
		}
		return f.fail(mid)
	}
	if len(m.Code) == 0 {
		return true
	}
	flags := f.receiverFlags(cf, m).flags
	for pc, in := range m.Code {
		switch in.Op {
		case bytecode.GETSTATIC, bytecode.PUTSTATIC:
			// Static parts may live on a different node.
			return f.fail(mid)
		case bytecode.NEW:
			// The allocation site may be assigned to a different
			// node, which would turn the NEW into a remote message
			// from inside the asynchronous handler.
			return f.fail(mid)
		case bytecode.GETFIELD, bytecode.PUTFIELD:
			if flags[pc] != avThis {
				return f.fail(mid)
			}
		case bytecode.INVOKEVIRTUAL, bytecode.INVOKESPECIAL:
			_, name, desc := cf.Pool.Ref(uint16(in.A))
			switch {
			case flags[pc] == avThis:
				// Dispatch stays on this object: any subclass of the
				// declaring class could be the dynamic type.
				if !f.confinedDispatch(mid.Class, name, desc, touch, visited) {
					return f.fail(mid)
				}
			default:
				fieldCls, ok := avFieldClass(flags[pc])
				if !ok {
					return f.fail(mid)
				}
				if !f.confinedDispatch(fieldCls, name, desc, touch, visited) {
					return f.fail(mid)
				}
			}
		case bytecode.INVOKESTATIC:
			cls, name, desc := cf.Pool.Ref(uint16(in.A))
			if cls == "Math" || cls == "Str" {
				continue
			}
			callee := declaringMethod(f.prog, MethodID{cls, name, desc})
			if !f.confinedMethod(callee, touch, visited) {
				return f.fail(mid)
			}
		}
	}
	return true
}

func (f *Facts) fail(mid MethodID) bool {
	f.notConfined[mid] = true
	return false
}

// ReplicaRead reports whether a call through static type cls can be
// served from a read replica: a non-void method that, over every
// possible dispatch target and transitively through this-receiver
// callees, only reads fields of the receiver — no field writes, no
// statics, no allocations, no calls on other objects, no escape of
// `this`. Such a method executed on a field snapshot returns exactly
// what the owner would return as long as the snapshot is valid, which
// the invalidate-on-write protocol guarantees.
func (f *Facts) ReplicaRead(cls, name, desc string) bool {
	if f == nil {
		return false
	}
	params, ret, err := bytecode.ParseMethodDesc(desc)
	if err != nil || ret == "V" {
		return false
	}
	// Arguments must travel by value: reference parameters could leak
	// shadow state, and arrays have copy-restore semantics a local
	// replica call would skip.
	for _, p := range params {
		switch bytecode.DescKind(p) {
		case bytecode.DescInt, bytecode.DescLong, bytecode.DescFloat,
			bytecode.DescBool, bytecode.DescString:
		default:
			return false
		}
	}
	return f.readOnlyDispatch(cls, name, desc, map[MethodID]bool{})
}

// readOnlyDispatch checks every implementation a call through static
// type cls may dispatch to against the replica-read rules.
func (f *Facts) readOnlyDispatch(cls, name, desc string, visited map[MethodID]bool) bool {
	return f.dispatchImpls(cls, name, desc, nil,
		func(impl MethodID) bool { return f.readOnlyMethod(impl, visited) })
}

// readOnlyMethod checks one concrete method body: reads confined to
// `this`, nothing mutated, `this` never escaping, callees (on `this`
// or pure Math/Str statics only) recursively read-only.
func (f *Facts) readOnlyMethod(mid MethodID, visited map[MethodID]bool) bool {
	if f.notReadOnly[mid] {
		return false
	}
	if visited[mid] {
		return true // cycle: no violation found on this path
	}
	visited[mid] = true
	failRO := func() bool {
		f.notReadOnly[mid] = true
		return false
	}
	cf := f.prog.Class(mid.Class)
	if cf == nil {
		return failRO()
	}
	m := cf.Method(mid.Name, mid.Desc)
	if m == nil || m.IsNative() || len(m.Code) == 0 {
		return failRO()
	}
	flow := f.receiverFlags(cf, m)
	if flow.thisEscapes {
		// An escaping `this` would be the replica shadow, not the real
		// object — it must never leave the replica-local call. Calls
		// *on* `this` are fine: the recursion below proves the callee
		// read-only too.
		return failRO()
	}
	for pc, in := range m.Code {
		switch in.Op {
		case bytecode.PUTFIELD, bytecode.PUTSTATIC, bytecode.GETSTATIC,
			bytecode.NEW, bytecode.NEWARRAY, bytecode.AASTORE:
			return failRO()
		case bytecode.GETFIELD:
			if flow.flags[pc] != avThis {
				return failRO()
			}
		case bytecode.INVOKEVIRTUAL, bytecode.INVOKESPECIAL:
			_, name, desc := cf.Pool.Ref(uint16(in.A))
			if flow.flags[pc] != avThis {
				return failRO()
			}
			if !f.readOnlyDispatch(mid.Class, name, desc, visited) {
				return failRO()
			}
		case bytecode.INVOKESTATIC:
			cls, _, _ := cf.Pool.Ref(uint16(in.A))
			if cls != "Math" && cls != "Str" {
				return failRO()
			}
		}
	}
	return true
}

// receiverFlags runs the receiver-tracking dataflow over a method. It
// returns, per instruction index, the abstract value of the receiver
// operand for field and invoke instructions (avOther elsewhere), plus
// whether `this` escapes the method (see methodFlow.thisEscapes).
func (f *Facts) receiverFlags(cf *bytecode.ClassFile, m *bytecode.Method) *methodFlow {
	if cached, ok := f.flagsCache[m]; ok {
		return cached
	}
	code := m.Code
	n := len(code)
	flow := &methodFlow{flags: make([]string, n)}
	flags := flow.flags
	seen := make([]bool, n)
	record := func(i int, rcv string) {
		if !seen[i] {
			seen[i] = true
			flags[i] = rcv
		} else if flags[i] != rcv {
			flags[i] = avOther
		}
	}

	type state struct {
		stack  []string
		locals []string
	}
	clone := func(s state) state {
		ns := state{stack: make([]string, len(s.stack)), locals: make([]string, len(s.locals))}
		copy(ns.stack, s.stack)
		copy(ns.locals, s.locals)
		return ns
	}
	// merge meets two states pointwise; returns true when dst changed.
	merge := func(dst *state, src state) bool {
		changed := false
		meet := func(a *string, b string) {
			if *a != b && *a != avOther {
				*a = avOther
				changed = true
			}
		}
		for i := range dst.stack {
			meet(&dst.stack[i], src.stack[i])
		}
		for i := range dst.locals {
			meet(&dst.locals[i], src.locals[i])
		}
		return changed
	}

	entry := make([]*state, n)
	init := state{locals: make([]string, m.MaxLocals)}
	if !m.IsStatic() && m.MaxLocals > 0 {
		init.locals[0] = avThis
	}
	entry[0] = &init
	work := []int{0}
	for len(work) > 0 {
		i := work[len(work)-1]
		work = work[:len(work)-1]
		st := clone(*entry[i])
		in := code[i]

		pop := func() string {
			if len(st.stack) == 0 {
				return avOther
			}
			v := st.stack[len(st.stack)-1]
			st.stack = st.stack[:len(st.stack)-1]
			return v
		}
		push := func(v string) { st.stack = append(st.stack, v) }

		switch in.Op {
		case bytecode.ILOAD, bytecode.FLOAD, bytecode.ALOAD:
			push(st.locals[in.A])
		case bytecode.ISTORE, bytecode.FSTORE, bytecode.ASTORE:
			st.locals[in.A] = pop()
		case bytecode.DUP:
			v := pop()
			push(v)
			push(v)
		case bytecode.DUPX1:
			b := pop()
			a := pop()
			push(b)
			push(a)
			push(b)
		case bytecode.SWAP:
			b := pop()
			a := pop()
			push(b)
			push(a)
		case bytecode.GETFIELD:
			rcv := pop()
			record(i, rcv)
			_, _, fdesc := cf.Pool.Ref(uint16(in.A))
			if rcv == avThis && bytecode.DescKind(fdesc) == bytecode.DescClass {
				push(avField(bytecode.ClassOf(fdesc)))
			} else {
				push(avOther)
			}
		case bytecode.PUTFIELD:
			if pop() == avThis { // value
				flow.thisEscapes = true
			}
			record(i, pop())
		case bytecode.PUTSTATIC:
			if pop() == avThis {
				flow.thisEscapes = true
			}
		case bytecode.AASTORE:
			if pop() == avThis { // value
				flow.thisEscapes = true
			}
			pop() // index
			pop() // array
		case bytecode.ARETURN:
			if pop() == avThis {
				flow.thisEscapes = true
			}
		case bytecode.CHECKCAST:
			// A cast preserves the reference, so it must preserve the
			// abstract value too — otherwise `(A)this` would launder
			// `this` past the escape checks.
			v := pop()
			push(v)
		case bytecode.INVOKEVIRTUAL, bytecode.INVOKESPECIAL, bytecode.INVOKESTATIC:
			_, mname, desc := cf.Pool.Ref(uint16(in.A))
			params, ret, err := bytecode.ParseMethodDesc(desc)
			if err != nil {
				params, ret = nil, "V"
			}
			for range params {
				if pop() == avThis {
					flow.thisEscapes = true
				}
			}
			if in.Op != bytecode.INVOKESTATIC {
				rcv := pop()
				record(i, rcv)
				// `this` as the receiver of anything but a
				// constructor call: recorded separately from true
				// escapes — whether it matters depends on the
				// analysis (see methodFlow.thisCalls).
				if rcv == avThis && mname != "<init>" {
					flow.thisCalls = true
				}
			}
			if ret != "V" {
				push(avOther)
			}
		default:
			pops, pushes, err := bytecode.StackEffect(cf.Pool, in)
			if err != nil {
				pops, pushes = len(st.stack), 0
			}
			for k := 0; k < pops; k++ {
				pop()
			}
			for k := 0; k < pushes; k++ {
				push(avOther)
			}
		}

		propagate := func(j int) {
			if j >= n {
				return
			}
			if entry[j] == nil {
				ns := clone(st)
				entry[j] = &ns
				work = append(work, j)
			} else if len(entry[j].stack) == len(st.stack) {
				if merge(entry[j], st) {
					work = append(work, j)
				}
			}
		}
		if in.Op.IsReturn() {
			continue
		}
		if t := in.Target(); t >= 0 {
			propagate(t)
			if in.Op == bytecode.GOTO {
				continue
			}
		}
		propagate(i + 1)
	}
	f.flagsCache[m] = flow
	return flow
}
