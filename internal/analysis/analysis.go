package analysis

import (
	"time"

	"autodist/internal/bytecode"
)

// Result bundles every artifact of the static analysis pipeline along
// with the per-phase timings Table 2 reports.
type Result struct {
	CallGraph *CallGraph
	CRG       *CRG
	ODG       *ODG

	// Facts carries the cheap static facts (write-once fields,
	// confined void methods) that license the message-exchange
	// optimisations in rewrite and runtime.
	Facts *Facts

	// Replication is the read/write-intensity pass that classifies
	// classes as read-replication candidates (sharpenable with
	// profiler.FieldAccessCounts via ApplyProfile).
	Replication *ReplicaIntensity

	// Fusion is the access-fusion pass: runs of consecutive remote
	// accesses whose intermediate results are not consumed locally,
	// which rewrite+runtime collapse into single DEPSEQ round trips.
	Fusion *Fusion

	// MainClass is the class whose static main() starts the program.
	MainClass string

	// Timings for Table 2 (construct columns).
	CRGTime   time.Duration
	ODGTime   time.Duration
	FactsTime time.Duration
}

// Analyze runs the full pipeline: RTA call graph → class relation graph
// → object dependence graph.
func Analyze(p *bytecode.Program) (*Result, error) {
	res := &Result{}
	t0 := time.Now()
	cg, err := BuildCallGraph(p)
	if err != nil {
		return nil, err
	}
	crg, err := BuildCRG(p, cg)
	if err != nil {
		return nil, err
	}
	res.CRGTime = time.Since(t0)

	t1 := time.Now()
	odg, err := BuildODG(p, cg, crg)
	if err != nil {
		return nil, err
	}
	res.ODGTime = time.Since(t1)

	t2 := time.Now()
	res.Facts = BuildFacts(p, cg)
	res.Replication = BuildReplicaIntensity(p, cg, res.Facts)
	res.Fusion = BuildFusion(p, cg, res.Facts)
	res.FactsTime = time.Since(t2)

	res.CallGraph = cg
	res.CRG = crg
	res.ODG = odg
	res.MainClass = p.MainClass
	return res, nil
}
