package analysis

import (
	"fmt"
	"sort"

	"autodist/internal/bytecode"
	"autodist/internal/graph"
)

// ClassNode identifies a CRG node: the static (ST) or dynamic (DT) part
// of a class, following the paper's Figure 3 annotation.
type ClassNode struct {
	Class  string
	Static bool
}

func (c ClassNode) String() string {
	if c.Static {
		return "ST_" + c.Class
	}
	return "DT_" + c.Class
}

// Relation is one typed class relation.
type Relation struct {
	From, To ClassNode
	Kind     graph.EdgeKind // KindUse, KindExport or KindImport
	// TypeName annotates export/import relations with the class type
	// that propagates.
	TypeName string
}

// CRG is the class relation graph plus the indexed relations the ODG
// propagation consumes.
type CRG struct {
	Graph *graph.Graph
	// Relations holds all use/export/import relations.
	Relations []Relation
	// Volume estimates, per (from,to) node pair, the bytes a
	// cross-partition dependence would move (Table 1's edge weights
	// and §3's communication modelling).
	Volume map[[2]ClassNode]int64

	nodeIdx map[ClassNode]int
}

// NodeID returns the graph vertex for a class node, or -1.
func (c *CRG) NodeID(n ClassNode) int {
	if i, ok := c.nodeIdx[n]; ok {
		return i
	}
	return -1
}

// exportsOf lists export relations from class node f.
func (c *CRG) exportsOf(f ClassNode) []Relation {
	var out []Relation
	for _, r := range c.Relations {
		if r.Kind == graph.KindExport && r.From == f {
			out = append(out, r)
		}
	}
	return out
}

// importsInto lists import relations into class node f (f receives the
// type).
func (c *CRG) importsInto(f ClassNode) []Relation {
	var out []Relation
	for _, r := range c.Relations {
		if r.Kind == graph.KindImport && r.To == f {
			out = append(out, r)
		}
	}
	return out
}

// slotBytes estimates the wire size of one descriptor slot.
func slotBytes(desc string) int64 {
	switch bytecode.DescKind(desc) {
	case bytecode.DescVoid:
		return 0
	case bytecode.DescString:
		return 16
	case bytecode.DescClass:
		return 12 // object identifier (node + local id) + tag
	case bytecode.DescArray:
		// Arrays cross the wire by value (copy-restore), so an array
		// parameter is far more expensive than an object reference.
		return 512
	default:
		return 8
	}
}

// descVolume estimates request+response bytes for a method descriptor.
func descVolume(desc string) int64 {
	params, ret, err := bytecode.ParseMethodDesc(desc)
	if err != nil {
		return 8
	}
	var v int64 = 16 // message header
	for _, p := range params {
		v += slotBytes(p)
	}
	v += slotBytes(ret)
	return v
}

// BuildCRG derives the class relation graph from the call graph by
// scanning every reachable method for field accesses, method calls and
// allocations (paper §2).
func BuildCRG(p *bytecode.Program, cg *CallGraph) (*CRG, error) {
	crg := &CRG{
		Graph:   graph.New("CRG"),
		Volume:  map[[2]ClassNode]int64{},
		nodeIdx: map[ClassNode]int{},
	}
	relSeen := map[string]bool{}

	// classStats accumulate node weights: code size drives the CPU
	// estimate, field count the memory estimate.
	nodeOf := func(n ClassNode) int {
		if id, ok := crg.nodeIdx[n]; ok {
			return id
		}
		cf := p.Class(n.Class)
		var mem, cpu int64 = 16, 8
		if cf != nil {
			for i := range cf.Fields {
				if cf.Fields[i].IsStatic() == n.Static {
					mem += 8
				}
			}
			for i := range cf.Methods {
				m := &cf.Methods[i]
				if m.IsStatic() == n.Static && cg.Reachable[MethodID{n.Class, m.Name, m.Desc}] {
					cpu += int64(len(m.Code))
				}
			}
		}
		battery := (mem + cpu) / 2
		id := crg.Graph.AddVertex(n.String(), mem, cpu, battery)
		crg.Graph.Vertex(id).Attr = n
		crg.nodeIdx[n] = id
		return id
	}

	addRel := func(r Relation, volume int64) {
		key := fmt.Sprintf("%s|%s|%d|%s", r.From, r.To, r.Kind, r.TypeName)
		fromID, toID := nodeOf(r.From), nodeOf(r.To)
		crg.Volume[[2]ClassNode{r.From, r.To}] += volume
		if relSeen[key] {
			return
		}
		relSeen[key] = true
		crg.Relations = append(crg.Relations, r)
		label := r.Kind.String()
		if r.TypeName != "" {
			label += ":" + r.TypeName
		}
		crg.Graph.AddLabeledEdge(fromID, toID, volume, r.Kind, label)
	}

	// refTypes extracts user class names referenced by a descriptor.
	refTypes := func(desc string) []string {
		var out []string
		d := desc
		for len(d) > 0 && d[0] == '[' {
			d = d[1:]
		}
		if len(d) > 2 && d[0] == 'L' {
			out = append(out, d[1:len(d)-1])
		}
		return out
	}

	for _, mid := range cg.ReachableMethods() {
		cf := p.Class(mid.Class)
		if cf == nil {
			continue
		}
		m := cf.Method(mid.Name, mid.Desc)
		if m == nil || m.IsNative() {
			continue
		}
		ctx := ClassNode{mid.Class, m.IsStatic()}
		nodeOf(ctx)
		depth := loopDepths(m)

		for pc, in := range m.Code {
			// Accesses inside loops are weighted heavier — the
			// frequency heuristic the paper proposes in §3 for
			// static resource approximation.
			mult := int64(1)
			for d := 0; d < depth[pc] && d < 2; d++ {
				mult *= loopWeightFactor
			}
			switch in.Op {
			case bytecode.NEW:
				cls := cf.Pool.ClassName(uint16(in.A))
				if cls == mid.Class && !m.IsStatic() {
					continue // self-allocation adds no relation
				}
				addRel(Relation{From: ctx, To: ClassNode{cls, false}, Kind: graph.KindUse}, 16*mult)
			case bytecode.GETFIELD, bytecode.PUTFIELD, bytecode.GETSTATIC, bytecode.PUTSTATIC:
				cls, _, desc := cf.Pool.Ref(uint16(in.A))
				static := in.Op == bytecode.GETSTATIC || in.Op == bytecode.PUTSTATIC
				to := ClassNode{cls, static}
				if to == ctx {
					continue
				}
				vol := (12 + slotBytes(desc)) * mult
				addRel(Relation{From: ctx, To: to, Kind: graph.KindUse}, vol)
				// Reading a class-typed field imports its type;
				// writing exports it.
				for _, t := range refTypes(desc) {
					if in.Op == bytecode.GETFIELD || in.Op == bytecode.GETSTATIC {
						addRel(Relation{From: to, To: ctx, Kind: graph.KindImport, TypeName: t}, 0)
					} else {
						addRel(Relation{From: ctx, To: to, Kind: graph.KindExport, TypeName: t}, 0)
					}
				}
			case bytecode.INVOKEVIRTUAL, bytecode.INVOKESPECIAL, bytecode.INVOKESTATIC:
				cls, name, desc := cf.Pool.Ref(uint16(in.A))
				callee := declaringMethod(p, MethodID{cls, name, desc})
				static := in.Op == bytecode.INVOKESTATIC
				to := ClassNode{callee.Class, static}
				if to == ctx {
					continue
				}
				addRel(Relation{From: ctx, To: to, Kind: graph.KindUse}, descVolume(desc)*mult)
				params, ret, err := bytecode.ParseMethodDesc(desc)
				if err != nil {
					return nil, err
				}
				for _, pd := range params {
					for _, t := range refTypes(pd) {
						addRel(Relation{From: ctx, To: to, Kind: graph.KindExport, TypeName: t}, 0)
					}
				}
				for _, t := range refTypes(ret) {
					addRel(Relation{From: to, To: ctx, Kind: graph.KindImport, TypeName: t}, 0)
				}
			}
		}
	}

	sortRelations(crg.Relations)
	return crg, nil
}

func sortRelations(rs []Relation) {
	sort.Slice(rs, func(i, j int) bool {
		a, b := rs[i], rs[j]
		ka := fmt.Sprintf("%s|%s|%d|%s", a.From, a.To, a.Kind, a.TypeName)
		kb := fmt.Sprintf("%s|%s|%d|%s", b.From, b.To, b.Kind, b.TypeName)
		return ka < kb
	})
}

// loopWeightFactor scales access volumes per loop-nesting level (§3's
// static frequency heuristic; capped at two levels).
const loopWeightFactor = 16

// loopDepths returns, per instruction, the number of nested loop bodies
// (backward-branch ranges) containing it.
func loopDepths(m *bytecode.Method) []int {
	depth := make([]int, len(m.Code))
	for i, in := range m.Code {
		if t := in.Target(); t >= 0 && t <= i {
			for j := t; j <= i; j++ {
				depth[j]++
			}
		}
	}
	return depth
}
