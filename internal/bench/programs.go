// Package bench contains the MJ re-implementations of the paper's
// benchmark suite: the Java Grande kernels (create, method, crypt,
// heapsort, moldyn, search — §7's Table 1) and the SPEC JVM98 programs
// (compress, db), plus the Table 3 profiling set (CreateBench element
// variants, FFT, MonteCarlo). Every program is deterministic, validates
// itself, and prints a small checksum so sequential and distributed
// runs can be compared bit-for-bit.
package bench

import (
	"fmt"
	"sort"
)

// Program is one registered benchmark.
type Program struct {
	// Name is the benchmark's Table 1 row name.
	Name string
	// Source is the complete MJ source.
	Source string
	// Description summarises the workload archetype.
	Description string
	// ExpectOutput, when non-empty, is the exact output a correct run
	// must produce.
	ExpectOutput string
}

var registry = map[string]Program{}

func register(p Program) {
	registry[p.Name] = p
}

// Get returns a registered program.
func Get(name string) (Program, error) {
	p, ok := registry[name]
	if !ok {
		return Program{}, fmt.Errorf("bench: unknown benchmark %q (have %v)", name, Names())
	}
	return p, nil
}

// Names lists all registered benchmarks sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Table1Names returns the eight benchmarks of the paper's Table 1, in
// the paper's row order.
func Table1Names() []string {
	return []string{"create", "method", "crypt", "heapsort", "moldyn", "search", "compress", "db"}
}

// Table3Names returns the profiling benchmark set of Table 3, in the
// paper's row order.
func Table3Names() []string {
	return []string{
		"create_int", "create_long", "create_float", "create_object", "create_custom",
		"method", "fft", "heapsort", "moldyn", "montecarlo",
	}
}

// randClass is the shared deterministic LCG used by several benchmarks.
const randClass = `
class Rand {
	int seed;
	Rand(int s) { this.seed = s; }
	int next() {
		this.seed = (this.seed * 1103515245 + 12345) & 2147483647;
		return this.seed;
	}
	int nextN(int n) {
		return this.next() % n;
	}
}
`

// harnessSource mirrors the JGF instrumentation framework every Java
// Grande benchmark runs inside (timers, validation, configuration): it
// gives the benchmarks realistic multi-class structure and gives the
// partitioner cold objects to place on the remote node.
const harnessSource = `
class JGFConfig {
	string name;
	int size;
	string[] params;
	JGFConfig(string name, int size) {
		this.name = name;
		this.size = size;
		this.params = new string[4];
		for (int i = 0; i < 4; i++) {
			this.params[i] = name + "-p" + i;
		}
	}
	string describe() {
		return this.name + "[" + this.size + "]";
	}
}
class JGFTimer {
	long[] marks;
	long[] totals;
	int sections;
	JGFTimer() {
		this.marks = new long[8];
		this.totals = new long[8];
	}
	void start(int s) {
		this.marks[s] = this.marks[s] + 1;
		if (s + 1 > this.sections) { this.sections = s + 1; }
	}
	void stop(int s) {
		this.totals[s] = this.totals[s] + 1;
	}
}
class JGFValidator {
	int checks;
	int passed;
	void check(boolean ok) {
		this.checks++;
		if (ok) { this.passed++; }
	}
	boolean allPassed() {
		return this.checks > 0 && this.checks == this.passed;
	}
}
class JGFHarness {
	JGFConfig config;
	JGFTimer timer;
	JGFValidator validator;
	JGFHarness(string name, int size) {
		this.config = new JGFConfig(name, size);
		this.timer = new JGFTimer();
		this.validator = new JGFValidator();
	}
	void section(int s) { this.timer.start(s); }
	void endSection(int s) { this.timer.stop(s); }
	void check(boolean ok) { this.validator.check(ok); }
	void report() {
		string status = "failed";
		if (this.validator.allPassed()) { status = "validated"; }
		System.println(this.config.describe() + " " + status +
			" checks=" + this.validator.checks + " sections=" + this.timer.sections);
	}
}
`

func init() {
	register(Program{
		Name:         "create",
		Description:  "JGFCreateBench: object and array creation rates (section 1)",
		ExpectOutput: "create: objects=20000 arrays=10000 sum=249985000\ncreate[20000] validated checks=1 sections=2\n",
		Source: harnessSource + `
class Node {
	int value;
	Node next;
	Node(int v) { this.value = v; }
}
class CreateBench {
	int objs;
	int arrs;
	int sum;
	void objects(int n) {
		Node head = null;
		for (int i = 0; i < n; i++) {
			Node nd = new Node(i);
			nd.next = head;
			head = nd;
			this.objs++;
			this.sum += nd.value;
		}
	}
	void arrays(int n, int size) {
		for (int i = 0; i < n; i++) {
			int[] a = new int[size];
			a[0] = i;
			this.arrs++;
			this.sum += a[0];
		}
	}
	static void main() {
		JGFHarness h = new JGFHarness("create", 20000);
		CreateBench b = new CreateBench();
		h.section(0);
		b.objects(20000);
		h.endSection(0);
		h.section(1);
		b.arrays(10000, 32);
		h.endSection(1);
		h.check(b.objs == 20000 && b.arrs == 10000);
		System.println("create: objects=" + b.objs + " arrays=" + b.arrs + " sum=" + b.sum);
		h.report();
	}
}`,
	})

	for _, v := range []struct {
		name, elem, alloc string
	}{
		{"create_int", "int", "int[] a = new int[64]; a[0] = i; chk += a.length;"},
		{"create_long", "long", "long[] a = new long[64]; a[0] = i; chk += a.length;"},
		{"create_float", "float", "float[] a = new float[64]; a[0] = 1.0; chk += a.length;"},
		{"create_object", "Object", "Object[] a = new Object[64]; chk += a.length;"},
		{"create_custom", "Custom", "Custom c = new Custom(i); chk += c.v;"},
	} {
		register(Program{
			Name:        v.name,
			Description: "CreateBench (" + v.elem + "[]): allocation of " + v.elem + " cells (Table 3 variant)",
			Source: `
class Custom {
	int v;
	Custom(int v) { this.v = v; }
}
class CreateBench {
	static void main() {
		int chk = 0;
		for (int i = 0; i < 800; i++) {
			` + v.alloc + `
		}
		System.println("` + v.name + `: chk=" + chk);
	}
}`,
		})
	}

	register(Program{
		Name:        "method",
		Description: "JGFMethodBench: instance and static method invocation rates (section 1)",

		Source: harnessSource + `
class Methods {
	int acc;
	int instAdd(int x) { return x + 1; }
	int instAcc(int x) { this.acc += x; return this.acc; }
	static int statAdd(int x) { return x + 2; }
}
class MethodBench {
	static void main() {
		JGFHarness h = new JGFHarness("method", 40000);
		Methods m = new Methods();
		int sum = 0;
		h.section(0);
		for (int i = 0; i < 40000; i++) {
			sum += m.instAdd(i % 10);
			sum += Methods.statAdd(i % 10);
			sum += m.instAcc(1) % 100;
			sum += sameClass(i) % 100;
		}
		h.endSection(0);
		h.check(m.acc == 40000);
		System.println("method: sum=" + sum);
		h.report();
	}
	static int sameClass(int x) { return x * 3; }
}`,
	})

	register(Program{
		Name:        "crypt",
		Description: "JGFCryptBench: symmetric block cipher over an int array (section 2)",
		Source: randClass + harnessSource + `
class Crypt {
	int[] key;
	Crypt(int seed) {
		this.key = new int[16];
		Rand r = new Rand(seed);
		for (int i = 0; i < 16; i++) {
			this.key[i] = r.next() & 255;
		}
	}
	void encrypt(int[] data) {
		for (int round = 0; round < 4; round++) {
			for (int i = 0; i < data.length; i++) {
				data[i] = (data[i] + this.key[(i + round) % 16]) & 255;
				data[i] = ((data[i] << 3) | (data[i] >> 5)) & 255;
				data[i] = data[i] ^ this.key[(i * 7 + round) % 16];
			}
		}
	}
	void decrypt(int[] data) {
		for (int round = 3; round >= 0; round--) {
			for (int i = 0; i < data.length; i++) {
				data[i] = data[i] ^ this.key[(i * 7 + round) % 16];
				data[i] = ((data[i] >> 3) | (data[i] << 5)) & 255;
				data[i] = (data[i] - this.key[(i + round) % 16]) & 255;
			}
		}
	}
	static void main() {
		int n = 8192;
		JGFHarness h = new JGFHarness("crypt", n);
		int[] data = new int[n];
		Rand r = new Rand(7);
		for (int i = 0; i < n; i++) {
			data[i] = r.next() & 255;
		}
		int before = 0;
		for (int i = 0; i < n; i++) { before += data[i] * (i + 1); }
		Crypt c = new Crypt(99);
		h.section(0);
		c.encrypt(data);
		h.endSection(0);
		int mid = 0;
		for (int i = 0; i < n; i++) { mid += data[i] * (i + 1); }
		h.section(1);
		c.decrypt(data);
		h.endSection(1);
		int after = 0;
		for (int i = 0; i < n; i++) { after += data[i] * (i + 1); }
		string ok = "FAIL";
		if (before == after && mid != before) { ok = "OK"; }
		h.check(before == after);
		h.check(mid != before);
		System.println("crypt: " + ok + " chk=" + mid);
		h.report();
	}
}`,
	})

	register(Program{
		Name:        "heapsort",
		Description: "JGFHeapSortBench: heap sort over a pseudo-random int array (section 2)",
		Source: randClass + harnessSource + `
class HeapSort {
	void sift(int[] a, int start, int end) {
		int root = start;
		boolean going = true;
		while (going) {
			int child = root * 2 + 1;
			if (child > end) {
				going = false;
			} else {
				if (child + 1 <= end && a[child] < a[child + 1]) {
					child = child + 1;
				}
				if (a[root] < a[child]) {
					int t = a[root]; a[root] = a[child]; a[child] = t;
					root = child;
				} else {
					going = false;
				}
			}
		}
	}
	void sort(int[] a) {
		int n = a.length;
		for (int start = n / 2 - 1; start >= 0; start--) {
			this.sift(a, start, n - 1);
		}
		for (int end = n - 1; end > 0; end--) {
			int t = a[0]; a[0] = a[end]; a[end] = t;
			this.sift(a, 0, end - 1);
		}
	}
	static void main() {
		int n = 20000;
		JGFHarness h = new JGFHarness("heapsort", n);
		int[] a = new int[n];
		Rand r = new Rand(12345);
		for (int i = 0; i < n; i++) { a[i] = r.nextN(100000); }
		HeapSort hs = new HeapSort();
		h.section(0);
		hs.sort(a);
		h.endSection(0);
		boolean sorted = true;
		for (int i = 1; i < n; i++) {
			if (a[i - 1] > a[i]) { sorted = false; }
		}
		string ok = "FAIL";
		if (sorted) { ok = "OK"; }
		h.check(sorted);
		System.println("heapsort: " + ok + " head=" + a[0] + " mid=" + a[n / 2] + " tail=" + a[n - 1]);
		h.report();
	}
}`,
	})

	register(Program{
		Name:        "moldyn",
		Description: "JGFMolDynBench: N-body molecular dynamics with a Lennard-Jones-style force (section 3)",
		Source: harnessSource + `
class Particles {
	float[] x;
	float[] y;
	float[] vx;
	float[] vy;
	float[] fx;
	float[] fy;
	int n;
	Particles(int n) {
		this.n = n;
		this.x = new float[n];
		this.y = new float[n];
		this.vx = new float[n];
		this.vy = new float[n];
		this.fx = new float[n];
		this.fy = new float[n];
		for (int i = 0; i < n; i++) {
			this.x[i] = (float)(i % 6) * 1.2;
			this.y[i] = (float)(i / 6) * 1.2;
			this.vx[i] = 0.0;
			this.vy[i] = 0.0;
		}
	}
	void forces() {
		for (int i = 0; i < this.n; i++) {
			this.fx[i] = 0.0;
			this.fy[i] = 0.0;
		}
		for (int i = 0; i < this.n; i++) {
			for (int j = i + 1; j < this.n; j++) {
				float dx = this.x[i] - this.x[j];
				float dy = this.y[i] - this.y[j];
				float r2 = dx * dx + dy * dy + 0.01;
				float inv2 = 1.0 / r2;
				float inv6 = inv2 * inv2 * inv2;
				float f = 24.0 * inv6 * (2.0 * inv6 - 1.0) * inv2;
				this.fx[i] += f * dx;
				this.fy[i] += f * dy;
				this.fx[j] -= f * dx;
				this.fy[j] -= f * dy;
			}
		}
	}
	void step(float dt) {
		this.forces();
		for (int i = 0; i < this.n; i++) {
			this.vx[i] += this.fx[i] * dt;
			this.vy[i] += this.fy[i] * dt;
			this.x[i] += this.vx[i] * dt;
			this.y[i] += this.vy[i] * dt;
		}
	}
	float kinetic() {
		float e = 0.0;
		for (int i = 0; i < this.n; i++) {
			e += this.vx[i] * this.vx[i] + this.vy[i] * this.vy[i];
		}
		return 0.5 * e;
	}
}
class MolDyn {
	static void main() {
		JGFHarness h = new JGFHarness("moldyn", 48);
		Particles p = new Particles(48);
		h.section(0);
		for (int s = 0; s < 25; s++) {
			p.step(0.002);
		}
		h.endSection(0);
		float e = p.kinetic();
		int scaled = (int)(e * 1000000.0);
		h.check(scaled > 0);
		System.println("moldyn: ke6=" + scaled);
		h.report();
	}
}`,
	})

	register(Program{
		Name:        "search",
		Description: "JGFSearchBench: alpha-beta game-tree search (section 3)",
		Source: harnessSource + `
class Board {
	int[] cells;
	int nodes;
	Board() { this.cells = new int[9]; }
	int winner() {
		for (int i = 0; i < 3; i++) {
			if (this.cells[3 * i] != 0 && this.cells[3 * i] == this.cells[3 * i + 1] && this.cells[3 * i + 1] == this.cells[3 * i + 2]) {
				return this.cells[3 * i];
			}
			if (this.cells[i] != 0 && this.cells[i] == this.cells[i + 3] && this.cells[i + 3] == this.cells[i + 6]) {
				return this.cells[i];
			}
		}
		if (this.cells[0] != 0 && this.cells[0] == this.cells[4] && this.cells[4] == this.cells[8]) { return this.cells[0]; }
		if (this.cells[2] != 0 && this.cells[2] == this.cells[4] && this.cells[4] == this.cells[6]) { return this.cells[2]; }
		return 0;
	}
	int alphabeta(int player, int alpha, int beta) {
		this.nodes++;
		int w = this.winner();
		if (w != 0) {
			if (w == player) { return 1; }
			return -1;
		}
		boolean full = true;
		for (int i = 0; i < 9; i++) {
			if (this.cells[i] == 0) { full = false; }
		}
		if (full) { return 0; }
		int best = -2;
		for (int i = 0; i < 9; i++) {
			if (this.cells[i] == 0 && best < beta) {
				this.cells[i] = player;
				int v = -this.alphabeta(-player, -beta, -alpha);
				this.cells[i] = 0;
				if (v > best) { best = v; }
				if (best > alpha) { alpha = best; }
			}
		}
		return best;
	}
	static void main() {
		JGFHarness h = new JGFHarness("search", 9);
		Board b = new Board();
		h.section(0);
		int v = b.alphabeta(1, -2, 2);
		h.endSection(0);
		h.check(v == 0);
		System.println("search: value=" + v + " nodes=" + b.nodes);
		h.report();
	}
}`,
	})

	register(Program{
		Name:        "compress",
		Description: "SPEC JVM98 201_compress: LZW compression over synthetic text",
		Source: randClass + harnessSource + `
class LZW {
	int[] hashKey;
	int[] hashVal;
	int size;
	int next;
	LZW() {
		this.size = 4096;
		this.hashKey = new int[this.size];
		this.hashVal = new int[this.size];
		for (int i = 0; i < this.size; i++) { this.hashKey[i] = -1; }
		this.next = 256;
	}
	int find(int code, int ch) {
		int key = code * 256 + ch;
		int h = (key * 2654435761) & 4095;
		boolean searching = true;
		int result = -1;
		while (searching) {
			if (this.hashKey[h] == -1) {
				searching = false;
			} else {
				if (this.hashKey[h] == key) {
					result = this.hashVal[h];
					searching = false;
				} else {
					h = (h + 1) & 4095;
				}
			}
		}
		return result;
	}
	void insert(int code, int ch) {
		int key = code * 256 + ch;
		int h = (key * 2654435761) & 4095;
		while (this.hashKey[h] != -1) {
			h = (h + 1) & 4095;
		}
		this.hashKey[h] = key;
		this.hashVal[h] = this.next;
		this.next++;
	}
	int compress(int[] input, int[] output) {
		int outLen = 0;
		int code = input[0];
		for (int i = 1; i < input.length; i++) {
			int ch = input[i];
			int found = this.find(code, ch);
			if (found >= 0) {
				code = found;
			} else {
				output[outLen] = code;
				outLen++;
				if (this.next < 4000) {
					this.insert(code, ch);
				}
				code = ch;
			}
		}
		output[outLen] = code;
		outLen++;
		return outLen;
	}
	static void main() {
		int n = 40000;
		JGFHarness h = new JGFHarness("compress", n);
		int[] input = new int[n];
		Rand r = new Rand(55);
		for (int i = 0; i < n; i++) {
			input[i] = 97 + r.nextN(8);
		}
		int[] output = new int[n];
		LZW lzw = new LZW();
		h.section(0);
		int outLen = lzw.compress(input, output);
		h.endSection(0);
		int chk = 0;
		for (int i = 0; i < outLen; i++) { chk = (chk * 31 + output[i]) & 1048575; }
		string ok = "FAIL";
		if (outLen < n) { ok = "OK"; }
		h.check(outLen < n);
		System.println("compress: " + ok + " in=" + n + " out=" + outLen + " dict=" + (lzw.next - 256) + " chk=" + chk);
		h.report();
	}
}`,
	})

	register(Program{
		Name:        "db",
		Description: "SPEC JVM98 209_db: in-memory database of records with lookups, updates and sorting",
		Source: randClass + harnessSource + `
class Record {
	string name;
	int balance;
	Record(string name, int balance) { this.name = name; this.balance = balance; }
}
class Database {
	Vector records;
	Database() { this.records = new Vector(); }
	void add(Record r) { this.records.add(r); }
	Record findByName(string name) {
		for (int i = 0; i < this.records.size(); i++) {
			Record r = (Record) this.records.get(i);
			if (Str.equals(r.name, name)) { return r; }
		}
		return null;
	}
	void sortByName() {
		int n = this.records.size();
		for (int i = 1; i < n; i++) {
			Record key = (Record) this.records.get(i);
			int j = i - 1;
			boolean moving = true;
			while (moving) {
				if (j < 0) {
					moving = false;
				} else {
					Record rj = (Record) this.records.get(j);
					if (Str.compare(rj.name, key.name) > 0) {
						this.records.set(j + 1, rj);
						j--;
					} else {
						moving = false;
					}
				}
			}
			this.records.set(j + 1, key);
		}
	}
	int total() {
		int t = 0;
		for (int i = 0; i < this.records.size(); i++) {
			Record r = (Record) this.records.get(i);
			t += r.balance;
		}
		return t;
	}
	static void main() {
		JGFHarness h = new JGFHarness("db", 500);
		Database db = new Database();
		Rand r = new Rand(31);
		h.section(0);
		for (int i = 0; i < 500; i++) {
			db.add(new Record("cust" + r.nextN(100000), r.nextN(10000)));
		}
		h.endSection(0);
		h.section(1);
		db.sortByName();
		h.endSection(1);
		boolean sorted = true;
		for (int i = 1; i < db.records.size(); i++) {
			Record a = (Record) db.records.get(i - 1);
			Record b = (Record) db.records.get(i);
			if (Str.compare(a.name, b.name) > 0) { sorted = false; }
		}
		Record first = (Record) db.records.get(0);
		first.balance += 1;
		Record found = db.findByName(first.name);
		string ok = "FAIL";
		if (sorted && found != null && found.balance == first.balance) { ok = "OK"; }
		h.check(sorted);
		h.check(found != null);
		System.println("db: " + ok + " n=" + db.records.size() + " total=" + db.total() + " first=" + first.name);
		h.report();
	}
}`,
	})

	register(Program{
		Name:        "fft",
		Description: "FFTA: iterative radix-2 FFT with inverse-transform residual check (Table 3)",
		Source: `
class FFT {
	int n;
	float[] re;
	float[] im;
	FFT(int n) {
		this.n = n;
		this.re = new float[n];
		this.im = new float[n];
	}
	void transform(int sign) {
		int n = this.n;
		int j = 0;
		for (int i = 0; i < n - 1; i++) {
			if (i < j) {
				float tr = this.re[i]; this.re[i] = this.re[j]; this.re[j] = tr;
				float ti = this.im[i]; this.im[i] = this.im[j]; this.im[j] = ti;
			}
			int m = n / 2;
			while (m >= 1 && j >= m) {
				j = j - m;
				m = m / 2;
			}
			j = j + m;
		}
		int mmax = 1;
		while (mmax < n) {
			int istep = mmax * 2;
			float theta = (float)sign * 3.141592653589793 / (float)mmax;
			for (int m = 0; m < mmax; m++) {
				float w = (float)m * theta;
				float wr = Math.cos(w);
				float wi = Math.sin(w);
				for (int i = m; i < n; i += istep) {
					int k = i + mmax;
					float tr = wr * this.re[k] - wi * this.im[k];
					float ti = wr * this.im[k] + wi * this.re[k];
					this.re[k] = this.re[i] - tr;
					this.im[k] = this.im[i] - ti;
					this.re[i] += tr;
					this.im[i] += ti;
				}
			}
			mmax = istep;
		}
	}
	static void main() {
		int n = 128;
		FFT f = new FFT(n);
		for (int i = 0; i < n; i++) {
			f.re[i] = Math.sin((float)i * 0.3);
			f.im[i] = 0.0;
		}
		float[] orig = new float[n];
		for (int i = 0; i < n; i++) { orig[i] = f.re[i]; }
		f.transform(1);
		f.transform(-1);
		float maxErr = 0.0;
		for (int i = 0; i < n; i++) {
			float err = Math.abs(f.re[i] / (float)n - orig[i]);
			if (err > maxErr) { maxErr = err; }
		}
		string ok = "FAIL";
		if (maxErr < 0.0001) { ok = "OK"; }
		System.println("fft: " + ok + " n=" + n);
	}
}`,
	})

	register(Program{
		Name:        "montecarlo",
		Description: "MonteCarloA: Monte Carlo integration with an LCG stream (Table 3)",
		Source: randClass + `
class MonteCarlo {
	static void main() {
		Rand r = new Rand(2025);
		int inside = 0;
		int n = 20000;
		for (int i = 0; i < n; i++) {
			float x = (float)r.nextN(10000) / 10000.0;
			float y = (float)r.nextN(10000) / 10000.0;
			if (x * x + y * y <= 1.0) { inside++; }
		}
		int pi4 = (inside * 10000) / n;
		System.println("montecarlo: inside=" + inside + " pi4=" + pi4);
	}
}`,
	})
}

// CompileKernelNames returns the tiered-execution benchmark kernels:
// compute-bound loops with no native calls on the hot path, so the
// compiled tier's speedup is measured on pure interpretation overhead
// (the BENCH_compile.json workloads).
func CompileKernelNames() []string {
	return []string{"kernel_int", "kernel_float", "kernel_array", "kernel_rec"}
}

func init() {
	register(Program{
		Name:         "kernel_int",
		Description:  "tiered-execution kernel: integer arithmetic/logic loop, no natives on the hot path",
		ExpectOutput: "kernel_int: 9201402379481030590\n",
		Source: `
class Main {
	static int mix(int s, int i) {
		s = s + i * i - (i / 3) + (i % 7);
		s = s ^ (i << 2);
		s = s + (s >> 3);
		return s;
	}
	static void main() {
		int s = 0;
		for (int i = 0; i < 200000; i++) {
			s = mix(s, i);
		}
		System.println("kernel_int: " + s);
	}
}`,
	})

	register(Program{
		Name:         "kernel_float",
		Description:  "tiered-execution kernel: floating-point recurrence loop, no natives on the hot path",
		ExpectOutput: "kernel_float: 0\n",
		Source: `
class Main {
	static void main() {
		float s = 0.0;
		float x = 1.5;
		for (int i = 0; i < 200000; i++) {
			s = s + x * 1.0001 - s / 3.5;
			x = 0.0 - x;
		}
		int positive = 0;
		if (s > 0.0) { positive = 1; }
		System.println("kernel_float: " + positive);
	}
}`,
	})

	register(Program{
		Name:         "kernel_array",
		Description:  "tiered-execution kernel: in-place array heapsort-style sweeps, no natives on the hot path",
		ExpectOutput: "kernel_array: 523776\n",
		Source: `
class Main {
	static void main() {
		int n = 1024;
		int[] a = new int[n];
		for (int i = 0; i < n; i++) {
			a[i] = (i * 1103515245 + 12345) & 1023;
		}
		for (int pass = 0; pass < 200; pass++) {
			for (int i = 1; i < n; i++) {
				int v = a[i];
				int j = i - 1;
				boolean moving = true;
				while (moving) {
					if (j < 0) { moving = false; }
					else if (a[j] > v) { a[j + 1] = a[j]; j--; }
					else { moving = false; }
				}
				a[j + 1] = v;
			}
			a[pass % n] = pass & 1023;
		}
		int s = 0;
		for (int i = 0; i < n; i++) { s += a[i]; }
		System.println("kernel_array: " + s);
	}
}`,
	})

	register(Program{
		Name:         "kernel_rec",
		Description:  "tiered-execution kernel: recursive fibonacci, call-heavy with no natives",
		ExpectOutput: "kernel_rec: 196418\n",
		Source: `
class Main {
	static int fib(int n) {
		if (n < 2) { return n; }
		return fib(n - 1) + fib(n - 2);
	}
	static void main() {
		System.println("kernel_rec: " + fib(27));
	}
}`,
	})
}
