package bench_test

import (
	"strings"
	"testing"

	"autodist/internal/analysis"
	"autodist/internal/bench"
	"autodist/internal/compile"
	"autodist/internal/partition"
	"autodist/internal/rewrite"
	"autodist/internal/runtime"
	"autodist/internal/transport"
	"autodist/internal/vm"
)

func runSeq(t *testing.T, name string) string {
	t.Helper()
	p, err := bench.Get(name)
	if err != nil {
		t.Fatal(err)
	}
	bp, _, err := compile.CompileSource(p.Source)
	if err != nil {
		t.Fatalf("%s compile: %v", name, err)
	}
	m, err := vm.New(bp)
	if err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	m.Out = &out
	m.MaxSteps = 200_000_000
	if err := m.RunMain(); err != nil {
		t.Fatalf("%s run: %v\n%s", name, err, out.String())
	}
	return out.String()
}

func TestEveryBenchmarkRunsAndSelfValidates(t *testing.T) {
	for _, name := range bench.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			out := runSeq(t, name)
			if strings.Contains(out, "FAIL") {
				t.Errorf("%s self-check failed:\n%s", name, out)
			}
			if !strings.Contains(out, name+":") && !strings.Contains(out, strings.Split(name, "_")[0]) {
				t.Errorf("%s produced unexpected output:\n%s", name, out)
			}
			p, _ := bench.Get(name)
			if p.ExpectOutput != "" && out != p.ExpectOutput {
				t.Errorf("%s output %q, want %q", name, out, p.ExpectOutput)
			}
		})
	}
}

func TestBenchmarksDeterministic(t *testing.T) {
	for _, name := range bench.Table1Names() {
		a := runSeq(t, name)
		b := runSeq(t, name)
		if a != b {
			t.Errorf("%s not deterministic:\n%q\n%q", name, a, b)
		}
	}
}

func TestTable1SetRegistered(t *testing.T) {
	for _, name := range bench.Table1Names() {
		if _, err := bench.Get(name); err != nil {
			t.Error(err)
		}
	}
	for _, name := range bench.Table3Names() {
		if _, err := bench.Get(name); err != nil {
			t.Error(err)
		}
	}
	if _, err := bench.Get("nope"); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

// TestBenchmarksRunDistributed is the keystone: every Table 1 benchmark
// must produce identical output when partitioned two ways and executed
// across the distributed runtime (the experiment of §7.2).
func TestBenchmarksRunDistributed(t *testing.T) {
	for _, name := range bench.Table1Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			want := runSeq(t, name)
			p, _ := bench.Get(name)
			bp, _, err := compile.CompileSource(p.Source)
			if err != nil {
				t.Fatal(err)
			}
			res, err := analysis.Analyze(bp)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := partition.Partition(res.ODG.Graph, partition.Options{K: 2, Seed: 7}); err != nil {
				t.Fatal(err)
			}
			rw, err := rewrite.Rewrite(bp, res, 2)
			if err != nil {
				t.Fatal(err)
			}
			var out strings.Builder
			c, err := runtime.NewCluster(rw.Nodes, rw.Plan, transport.NewInProc(2), runtime.Options{
				Out: &out, MaxSteps: 500_000_000,
			})
			if err != nil {
				t.Fatal(err)
			}
			if err := c.Run(); err != nil {
				t.Fatalf("distributed %s: %v\n%s", name, err, out.String())
			}
			if out.String() != want {
				t.Errorf("%s distributed output differs:\n got %q\nwant %q", name, out.String(), want)
			}
		})
	}
}
