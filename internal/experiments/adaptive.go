package experiments

import (
	"fmt"
	"strings"

	"autodist/internal/analysis"
	"autodist/internal/compile"
	"autodist/internal/partition"
	"autodist/internal/rewrite"
	"autodist/internal/runtime"
	"autodist/internal/transport"
)

// PhaseShiftSource is the adaptive-repartitioning showcase workload:
// its hot object set moves mid-run. The driver (node 0) hammers the
// a-group stages for the first phase and the b-group stages for the
// second, so any static partition leaves at least one phase's hot
// objects on the wrong side of the wire. Adaptive repartitioning
// observes the traffic, migrates each phase's hot objects next to the
// driver, and turns the remaining phase's accesses into local calls —
// the scenario static partitioning cannot win.
const PhaseShiftSource = `
class Stage {
	int acc;
	int step(int x) { this.acc = this.acc + x; return this.acc; }
	int total() { return this.acc; }
}
class Main {
	static void main() {
		Stage a0 = new Stage();
		Stage a1 = new Stage();
		Stage a2 = new Stage();
		Stage a3 = new Stage();
		Stage b0 = new Stage();
		Stage b1 = new Stage();
		Stage b2 = new Stage();
		Stage b3 = new Stage();
		int s = 0;
		for (int i = 0; i < 150; i++) {
			s = s + a0.step(i) + a1.step(i) + a2.step(i) + a3.step(i);
		}
		for (int i = 0; i < 150; i++) {
			s = s + b0.step(i) + b1.step(i) + b2.step(i) + b3.step(i);
		}
		System.println("checksum=" + s);
		System.println("a=" + (a0.total() + a1.total() + a2.total() + a3.total()));
		System.println("b=" + (b0.total() + b1.total() + b2.total() + b3.total()));
	}
}
`

// AdaptiveRow is one row of the adaptive-repartitioning A/B table: the
// same workload distributed 2-way with the plan as a contract
// (-adaptive=off) versus as an initial placement with live migration.
type AdaptiveRow struct {
	Workload    string
	StaticMsgs  int64
	StaticBytes int64
	AdaptMsgs   int64
	AdaptBytes  int64
	Migrations  int64
	Forwards    int64
}

// adaptiveWorkloads names the workloads of the adaptive A/B table.
func adaptiveWorkloads() map[string]string {
	return map[string]string{
		"phaseshift": PhaseShiftSource,
		"bank":       BankExampleSource,
	}
}

// RunAdaptiveAB distributes one source 2-way and runs it with the
// static plan and with adaptive repartitioning, returning both
// clusters' stats. The partition, seed and fabric match the -messages
// table so the columns are comparable.
func RunAdaptiveAB(src string, k int) (static, adaptive runtime.NodeStats, err error) {
	run := func(adapt bool) (runtime.NodeStats, error) {
		bp, _, err := compile.CompileSource(src)
		if err != nil {
			return runtime.NodeStats{}, err
		}
		res, err := analysis.Analyze(bp)
		if err != nil {
			return runtime.NodeStats{}, err
		}
		if _, err := partition.Partition(res.ODG.Graph, partition.Options{K: k, Seed: 1, Epsilon: BalanceEps}); err != nil {
			return runtime.NodeStats{}, err
		}
		var rw *rewrite.Result
		if adapt {
			rw, err = rewrite.RewriteAdaptive(bp, res, k)
		} else {
			rw, err = rewrite.Rewrite(bp, res, k)
		}
		if err != nil {
			return runtime.NodeStats{}, err
		}
		every := 0
		if adapt {
			every = 32
		}
		var out strings.Builder
		cluster, err := runtime.NewCluster(rw.Nodes, rw.Plan, transport.NewInProc(k), runtime.Options{
			Out: &out, MaxSteps: 2_000_000_000, AdaptEvery: every,
		})
		if err != nil {
			return runtime.NodeStats{}, err
		}
		if err := cluster.Run(); err != nil {
			return runtime.NodeStats{}, fmt.Errorf("adaptive=%v: %w", adapt, err)
		}
		return cluster.TotalStats(), nil
	}
	if static, err = run(false); err != nil {
		return
	}
	adaptive, err = run(true)
	return
}

// TableAdaptive measures adaptive repartitioning against the static
// plan on the phase-shifting workload and the bank example.
func TableAdaptive() ([]AdaptiveRow, error) {
	var rows []AdaptiveRow
	for _, name := range []string{"phaseshift", "bank"} {
		src := adaptiveWorkloads()[name]
		static, adaptive, err := RunAdaptiveAB(src, 2)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", name, err)
		}
		rows = append(rows, AdaptiveRow{
			Workload:    name,
			StaticMsgs:  static.MessagesSent,
			StaticBytes: static.BytesSent,
			AdaptMsgs:   adaptive.MessagesSent,
			AdaptBytes:  adaptive.BytesSent,
			Migrations:  adaptive.Migrations,
			Forwards:    adaptive.Forwards,
		})
	}
	return rows, nil
}

// FormatTableAdaptive renders the adaptive A/B comparison.
func FormatTableAdaptive(rows []AdaptiveRow) string {
	var b strings.Builder
	b.WriteString("Adaptive repartitioning: live migration vs static plan (2-way, in-process fabric)\n")
	b.WriteString(fmt.Sprintf("%-10s %8s %8s %7s | %9s %9s %7s | %5s %5s\n",
		"workload", "msgs", "msgs-ad", "red", "bytes", "bytes-ad", "red", "migr", "fwd"))
	red := func(base, opt int64) string {
		if base == 0 {
			return "-"
		}
		return fmt.Sprintf("%.0f%%", float64(base-opt)/float64(base)*100)
	}
	for _, r := range rows {
		b.WriteString(fmt.Sprintf("%-10s %8d %8d %7s | %9d %9d %7s | %5d %5d\n",
			r.Workload, r.StaticMsgs, r.AdaptMsgs, red(r.StaticMsgs, r.AdaptMsgs),
			r.StaticBytes, r.AdaptBytes, red(r.StaticBytes, r.AdaptBytes),
			r.Migrations, r.Forwards))
	}
	return b.String()
}
