package experiments

import (
	"fmt"
	"strings"

	"autodist/internal/analysis"
	"autodist/internal/bytecode"
	"autodist/internal/codegen"
	"autodist/internal/compile"
	"autodist/internal/partition"
	"autodist/internal/quad"
	"autodist/internal/rewrite"
)

// BankExampleSource is the paper's running example (§2.1, Figure 2),
// used by Figures 3, 4, 8 and 9.
const BankExampleSource = `
class Account {
	int id;
	string name;
	int savings;
	int checking;
	int loan;
	Account(int id, string name, int savings, int checking, int loan) {
		this.id = id; this.name = name; this.savings = savings;
		this.checking = checking; this.loan = loan;
	}
	int getId() { return this.id; }
	int getSavings() { return this.savings; }
	int getBalance() { return this.savings + this.checking; }
	void setBalance(int b) { this.savings = b; }
}
class Bank {
	string name;
	int numCustomers;
	Vector accounts;
	Bank(string name, int numCustomers, int initialBalance) {
		this.name = name;
		this.numCustomers = numCustomers;
		this.accounts = new Vector();
		this.initializeAccounts(initialBalance);
	}
	void initializeAccounts(int initialBalance) {
		int n = this.numCustomers;
		while (n > 0) {
			Account a = new Account(n, "cust" + n, initialBalance, 0, 0);
			this.accounts.add(a);
			n--;
		}
	}
	void openAccount(Account a) { this.accounts.add(a); }
	Account getCustomer(int customerID) {
		for (int i = 0; i < this.accounts.size(); i++) {
			Account a = (Account) this.accounts.get(i);
			if (a.getId() == customerID) { return a; }
		}
		return null;
	}
	boolean withdraw(int customerID, int amount) {
		Account a = this.getCustomer(customerID);
		if (a != null) {
			a.setBalance(a.getBalance() - amount);
			return true;
		} else { return false; }
	}
	static void main() {
		Bank merchants = new Bank("Merchants", 100, 10000);
		Account a4 = new Account(1, "ABC Market", 1000000, 100000, 20000000);
		Account a5 = new Account(2, "CDE Outlet", 5000000, 300000, 150000000);
		merchants.openAccount(a4);
		merchants.openAccount(a5);
		Account a = merchants.getCustomer(2);
		merchants.withdraw(a.getId(), 900);
		int s = a.getSavings();
		System.println("final savings " + s);
	}
}
`

// Figure5ExampleSource is the paper's Figure 5 class.
const Figure5ExampleSource = `
class Example {
	int ex(int b) {
		b = 4;
		if (b > 2) {
			b++;
		}
		return b;
	}
}
class Main { static void main() { } }
`

// bankAnalysis compiles and analyses the Bank example with a 2-way
// partition, as in Figure 4's annotations.
func bankAnalysis() (*bytecode.Program, *analysis.Result, error) {
	bp, _, err := compile.CompileSource(BankExampleSource)
	if err != nil {
		return nil, nil, err
	}
	res, err := analysis.Analyze(bp)
	if err != nil {
		return nil, nil, err
	}
	if _, err := partition.Partition(res.ODG.Graph, partition.Options{K: 2, Seed: 1}); err != nil {
		return nil, nil, err
	}
	return bp, res, nil
}

// Figure3 returns the Bank example's class relation graph in VCG format.
func Figure3() (string, error) {
	_, res, err := bankAnalysis()
	if err != nil {
		return "", err
	}
	var b strings.Builder
	if err := res.CRG.Graph.VCG(&b); err != nil {
		return "", err
	}
	return b.String(), nil
}

// Figure4 returns the Bank example's object dependence graph (with
// 2-way partition annotations) in VCG format.
func Figure4() (string, error) {
	_, res, err := bankAnalysis()
	if err != nil {
		return "", err
	}
	var b strings.Builder
	if err := res.ODG.Graph.VCG(&b); err != nil {
		return "", err
	}
	return b.String(), nil
}

// Figure5 returns the quad listing of Example.ex.
func Figure5() (string, error) {
	bp, _, err := compile.CompileSource(Figure5ExampleSource)
	if err != nil {
		return "", err
	}
	cf := bp.Class("Example")
	f, err := quad.Translate(cf, cf.Method("ex", "(I)I"))
	if err != nil {
		return "", err
	}
	return f.Format(), nil
}

// Figure6 returns the AST forest of Example.ex.
func Figure6() (string, error) {
	bp, _, err := compile.CompileSource(Figure5ExampleSource)
	if err != nil {
		return "", err
	}
	cf := bp.Class("Example")
	f, err := quad.Translate(cf, cf.Method("ex", "(I)I"))
	if err != nil {
		return "", err
	}
	var b strings.Builder
	for _, bt := range codegen.BuildAST(f) {
		for i, tree := range bt.Trees {
			fmt.Fprintf(&b, "-- BB%d quad %d --\n%s", bt.Block.ID, bt.QuadIDs[i], tree.Format())
		}
	}
	return b.String(), nil
}

// Figure7 returns the x86 and StrongARM assembly for Example.ex.
func Figure7() (string, error) {
	bp, _, err := compile.CompileSource(Figure5ExampleSource)
	if err != nil {
		return "", err
	}
	cf := bp.Class("Example")
	f, err := quad.Translate(cf, cf.Method("ex", "(I)I"))
	if err != nil {
		return "", err
	}
	var b strings.Builder
	for _, target := range codegen.Targets() {
		asm, err := codegen.Generate(f, target)
		if err != nil {
			return "", err
		}
		b.WriteString(asm)
		b.WriteString("\n")
	}
	return b.String(), nil
}

// Figures8And9 returns the before/after bytecode of Bank.main and
// Bank.withdraw under a forced layout that makes Account remote —
// reproducing the method-invocation (Figure 8) and instantiation
// (Figure 9) transformations.
func Figures8And9() (string, error) {
	bp, res, err := bankAnalysis()
	if err != nil {
		return "", err
	}
	// Force all Account instances to node 1 so the transformations
	// appear in node 0's code.
	for _, s := range res.ODG.Sites {
		part := 0
		if s.Allocated == "Account" {
			part = 1
		}
		res.ODG.Graph.Vertex(s.Node).Part = part
	}
	for _, v := range res.ODG.StaticNode {
		res.ODG.Graph.Vertex(v).Part = 0
	}
	plan := rewrite.BuildPlan(res, 2)
	rewritten, err := rewrite.RewriteForNode(bp, plan, 0)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	for _, method := range []string{"main", "withdraw"} {
		orig := bp.Class("Bank").MethodByName(method)
		after := rewritten.Class("Bank").MethodByName(method)
		fmt.Fprintf(&b, "==== Original Bank.%s ====\n%s\n", method,
			bytecode.DisasmMethod(bp.Class("Bank"), orig))
		fmt.Fprintf(&b, "==== Transformed Bank.%s (node 0) ====\n%s\n", method,
			bytecode.DisasmMethod(rewritten.Class("Bank"), after))
	}
	return b.String(), nil
}
