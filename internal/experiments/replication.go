package experiments

import (
	"fmt"
	"strings"

	"autodist/internal/analysis"
	"autodist/internal/compile"
	"autodist/internal/partition"
	"autodist/internal/rewrite"
	"autodist/internal/runtime"
	"autodist/internal/transport"
	"autodist/internal/vm"
)

// ReadMostlySource is the read-replication showcase workload: one
// shared Directory object (the bank example's account directory in
// miniature) hammered with lookups from worker objects on every other
// node, with a rare write per phase. Statically every lookup is a
// remote round-trip to the directory's home; with replication each
// reader node installs a replica once per phase and serves the lookups
// locally, paying only the write's invalidation traffic — the
// scenario the coherence layer exists for.
const ReadMostlySource = `
class Directory {
	int k0; int k1; int k2; int k3;
	int v0; int v1; int v2; int v3;
	Directory() {
		this.k0 = 10; this.k1 = 11; this.k2 = 12; this.k3 = 13;
		this.v0 = 100; this.v1 = 200; this.v2 = 300; this.v3 = 400;
	}
	int lookup(int key) {
		if (key == this.k0) { return this.v0; }
		if (key == this.k1) { return this.v1; }
		if (key == this.k2) { return this.v2; }
		if (key == this.k3) { return this.v3; }
		return 0;
	}
	int sum() { return this.v0 + this.v1 + this.v2 + this.v3; }
	void update(int slot, int val) {
		if (slot == 0) { this.v0 = val; }
		if (slot == 1) { this.v1 = val; }
		if (slot == 2) { this.v2 = val; }
		if (slot == 3) { this.v3 = val; }
	}
}
class Worker {
	Directory dir;
	int label;
	Worker(Directory d, int label) { this.dir = d; this.label = label; }
	int scan(int rounds) {
		int s = 0;
		for (int i = 0; i < rounds; i++) {
			s = s + this.dir.lookup(10) + this.dir.lookup(12) + this.dir.sum();
		}
		return s;
	}
}
class Main {
	static void main() {
		Directory d = new Directory();
		Worker w1 = new Worker(d, 1);
		Worker w2 = new Worker(d, 2);
		int s = 0;
		for (int phase = 0; phase < 5; phase++) {
			s = s + w1.scan(20) + w2.scan(20);
			d.update(1, 1000 + phase);
		}
		System.println("checksum=" + s);
		System.println("final=" + d.sum());
	}
}
`

// placeReadMostly pins the directory (and everything else) on node 0
// and spreads the Worker allocation sites round-robin over the reader
// nodes 1..k-1, the many-reader-nodes shape the workload describes.
func placeReadMostly(res *analysis.Result, k int) {
	for _, v := range res.ODG.Graph.Vertices() {
		v.Part = 0
	}
	reader := 1
	for _, s := range res.ODG.Sites {
		if s.Allocated == "Worker" {
			res.ODG.Graph.Vertex(s.Node).Part = reader
			reader++
			if reader >= k {
				reader = 1
			}
		}
	}
}

// RunReplicationAB distributes one source k ways and runs it twice —
// the plain static rewrite versus the replicated rewrite with the
// coherence protocol on — returning both stat sets. place may force a
// deterministic object placement (nil = partitioner, seed 1). Both
// runs are checked against the sequential output.
func RunReplicationAB(src string, k int, place func(*analysis.Result, int)) (static, replicated runtime.NodeStats, err error) {
	seq, err := sequentialOutput(src)
	if err != nil {
		return static, replicated, err
	}
	run := func(replicate bool) (runtime.NodeStats, error) {
		bp, _, err := compile.CompileSource(src)
		if err != nil {
			return runtime.NodeStats{}, err
		}
		res, err := analysis.Analyze(bp)
		if err != nil {
			return runtime.NodeStats{}, err
		}
		if place != nil {
			place(res, k)
		} else if _, err := partition.Partition(res.ODG.Graph, partition.Options{K: k, Seed: 1, Epsilon: BalanceEps}); err != nil {
			return runtime.NodeStats{}, err
		}
		rw, err := rewrite.RewriteWith(bp, res, k, rewrite.Options{Replicate: replicate})
		if err != nil {
			return runtime.NodeStats{}, err
		}
		var out strings.Builder
		cluster, err := runtime.NewCluster(rw.Nodes, rw.Plan, transport.NewInProc(k), runtime.Options{
			Out: &out, MaxSteps: 2_000_000_000, Replicate: replicate,
		})
		if err != nil {
			return runtime.NodeStats{}, err
		}
		if err := cluster.Run(); err != nil {
			return runtime.NodeStats{}, fmt.Errorf("replicate=%v: %w", replicate, err)
		}
		if out.String() != seq {
			return runtime.NodeStats{}, fmt.Errorf("replicate=%v: output %q != sequential %q",
				replicate, out.String(), seq)
		}
		return cluster.TotalStats(), nil
	}
	if static, err = run(false); err != nil {
		return
	}
	replicated, err = run(true)
	return
}

// RunReadMostlyAB runs the showcase A/B: ReadMostlySource on 3 nodes
// (directory + main on node 0, one worker on each reader node), static
// plan versus read-replication.
func RunReadMostlyAB() (static, replicated runtime.NodeStats, err error) {
	return RunReplicationAB(ReadMostlySource, 3, placeReadMostly)
}

// sequentialOutput runs src on one VM and returns its printed output.
func sequentialOutput(src string) (string, error) {
	bp, _, err := compile.CompileSource(src)
	if err != nil {
		return "", err
	}
	machine, err := vm.New(bp)
	if err != nil {
		return "", err
	}
	var out strings.Builder
	machine.Out = &out
	machine.MaxSteps = 2_000_000_000
	if err := machine.RunMain(); err != nil {
		return "", err
	}
	return out.String(), nil
}

// ReplicationRow is one row of the read-replication A/B table.
type ReplicationRow struct {
	Workload       string
	StaticMsgs     int64
	StaticBytes    int64
	ReplMsgs       int64
	ReplBytes      int64
	ReplicaHits    int64
	ReplicaFetches int64
	Invalidations  int64
}

// TableReplication measures read-replication against the static plan
// on the readmostly workload (3 nodes: one home, two reader nodes) and
// the bank example (2 nodes, partitioner placement).
func TableReplication() ([]ReplicationRow, error) {
	row := func(name, src string, k int, place func(*analysis.Result, int)) (ReplicationRow, error) {
		static, repl, err := RunReplicationAB(src, k, place)
		if err != nil {
			return ReplicationRow{}, fmt.Errorf("%s: %w", name, err)
		}
		return ReplicationRow{
			Workload:       name,
			StaticMsgs:     static.MessagesSent,
			StaticBytes:    static.BytesSent,
			ReplMsgs:       repl.MessagesSent,
			ReplBytes:      repl.BytesSent,
			ReplicaHits:    repl.ReplicaHits,
			ReplicaFetches: repl.ReplicaFetches,
			Invalidations:  repl.Invalidations,
		}, nil
	}
	var rows []ReplicationRow
	r, err := row("readmostly", ReadMostlySource, 3, placeReadMostly)
	if err != nil {
		return nil, err
	}
	rows = append(rows, r)
	r, err = row("bank", BankExampleSource, 2, nil)
	if err != nil {
		return nil, err
	}
	rows = append(rows, r)
	return rows, nil
}

// FormatTableReplication renders the replication A/B comparison.
func FormatTableReplication(rows []ReplicationRow) string {
	var b strings.Builder
	b.WriteString("Read-replication: coherence layer vs static plan (in-process fabric)\n")
	b.WriteString("(hits = replica-served reads; fetch = REPLICATE installs; inval = INVALIDATE frames)\n")
	b.WriteString(fmt.Sprintf("%-10s %8s %8s %7s | %9s %9s %7s | %6s %5s %5s\n",
		"workload", "msgs", "msgs-rp", "red", "bytes", "bytes-rp", "red", "hits", "fetch", "inval"))
	red := func(base, opt int64) string {
		if base == 0 {
			return "-"
		}
		return fmt.Sprintf("%.0f%%", float64(base-opt)/float64(base)*100)
	}
	for _, r := range rows {
		b.WriteString(fmt.Sprintf("%-10s %8d %8d %7s | %9d %9d %7s | %6d %5d %5d\n",
			r.Workload, r.StaticMsgs, r.ReplMsgs, red(r.StaticMsgs, r.ReplMsgs),
			r.StaticBytes, r.ReplBytes, red(r.StaticBytes, r.ReplBytes),
			r.ReplicaHits, r.ReplicaFetches, r.Invalidations))
	}
	return b.String()
}
