// Package experiments regenerates every table and figure of the paper's
// evaluation (§7): Table 1 (program and graph sizes), Table 2
// (distribution-pipeline timing), Figure 11 (distributed vs centralized
// performance) and Table 3 (profiler overheads), plus the illustrative
// figures (3–9). The same entry points back the cmd/experiments binary
// and the root-level testing.B benchmarks.
package experiments

import (
	"fmt"
	"strings"
	"time"

	"autodist/internal/analysis"
	"autodist/internal/bench"
	"autodist/internal/bytecode"
	"autodist/internal/compile"
	"autodist/internal/partition"
	"autodist/internal/profiler"
	"autodist/internal/rewrite"
	"autodist/internal/runtime"
	"autodist/internal/transport"
	"autodist/internal/vm"
)

// Node speeds and network parameters modelling the paper's testbed: a
// 1.7 GHz service node, an 800 MHz computation node, 100 Mbit Ethernet.
const (
	ServiceNodeHz = 1.7e9
	ComputeNodeHz = 800e6
	// EthernetBytesPerSec is 100 Mbit/s in bytes.
	EthernetBytesPerSec = 12.5e6
	// EthernetLatencySec is a one-way small-message latency.
	EthernetLatencySec = 100e-6
	// BalanceEps is the multi-constraint imbalance tolerance used for
	// the evaluation runs. The paper's two nodes are themselves
	// uneven (1.7 GHz/512 MB vs 800 MHz/384 MB), so the partitioner
	// is allowed a generous imbalance: hot object clusters stay
	// whole and colder objects spill to the second node.
	BalanceEps = 0.6
)

func compileBench(name string) (*bytecode.Program, error) {
	p, err := bench.Get(name)
	if err != nil {
		return nil, err
	}
	bp, _, err := compile.CompileSource(p.Source)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", name, err)
	}
	return bp, nil
}

// countedClasses filters out the builtin native stubs so Table 1 counts
// the program the way the paper counts benchmark classes.
func countedClasses(bp *bytecode.Program) []*bytecode.ClassFile {
	var out []*bytecode.ClassFile
	for _, cf := range bp.Classes() {
		switch cf.Name {
		case "System", "Math", "Str":
			continue
		}
		out = append(out, cf)
	}
	return out
}

// Table1Row is one row of Table 1.
type Table1Row struct {
	Benchmark          string
	Classes, Methods   int
	KB                 float64
	CRGNodes, CRGEdges int
	CRGEdgeCut         int
	ODGNodes, ODGEdges int
	ODGEdgeCut         int
}

// Table1 computes the benchmark and graph sizes with 2-way edgecuts.
func Table1() ([]Table1Row, error) {
	var rows []Table1Row
	for _, name := range bench.Table1Names() {
		bp, err := compileBench(name)
		if err != nil {
			return nil, err
		}
		res, err := analysis.Analyze(bp)
		if err != nil {
			return nil, err
		}
		counted := countedClasses(bp)
		nMethods := 0
		size := 0
		for _, cf := range counted {
			nMethods += len(cf.Methods)
			b, err := cf.Encode()
			if err != nil {
				return nil, err
			}
			size += len(b)
		}
		crgRes, err := partition.Partition(res.CRG.Graph, partition.Options{K: 2, Seed: 1, Epsilon: BalanceEps})
		if err != nil {
			return nil, err
		}
		odgRes, err := partition.Partition(res.ODG.Graph, partition.Options{K: 2, Seed: 1, Epsilon: BalanceEps})
		if err != nil {
			return nil, err
		}
		rows = append(rows, Table1Row{
			Benchmark:  name,
			Classes:    len(counted),
			Methods:    nMethods,
			KB:         float64(size) / 1024,
			CRGNodes:   res.CRG.Graph.NumVertices(),
			CRGEdges:   res.CRG.Graph.NumEdges(),
			CRGEdgeCut: crgRes.CutEdges,
			ODGNodes:   res.ODG.Graph.NumVertices(),
			ODGEdges:   res.ODG.Graph.NumEdges(),
			ODGEdgeCut: odgRes.CutEdges,
		})
	}
	return rows, nil
}

// FormatTable1 renders Table 1 in the paper's layout.
func FormatTable1(rows []Table1Row) string {
	var b strings.Builder
	b.WriteString("Table 1: benchmark sizes and CRG/ODG graph sizes (2-way edgecut)\n")
	b.WriteString(fmt.Sprintf("%-10s %4s %4s %7s | %5s %5s %4s | %5s %5s %4s\n",
		"benchmark", "#C", "#M", "KB", "crgN", "crgE", "EC", "odgN", "odgE", "EC"))
	for _, r := range rows {
		b.WriteString(fmt.Sprintf("%-10s %4d %4d %7.1f | %5d %5d %4d | %5d %5d %4d\n",
			r.Benchmark, r.Classes, r.Methods, r.KB,
			r.CRGNodes, r.CRGEdges, r.CRGEdgeCut,
			r.ODGNodes, r.ODGEdges, r.ODGEdgeCut))
	}
	return b.String()
}

// Table2Row is one row of Table 2: the execution-time breakdown of the
// distribution pipeline, in the paper's columns.
type Table2Row struct {
	Benchmark      string
	ConstructCRG   time.Duration
	ConstructODG   time.Duration
	ConstructFacts time.Duration
	PartitionCRG   time.Duration
	PartitionODG   time.Duration
	Rewrite        time.Duration
}

// Table2 measures the per-phase times of code distribution.
func Table2() ([]Table2Row, error) {
	var rows []Table2Row
	for _, name := range bench.Table1Names() {
		bp, err := compileBench(name)
		if err != nil {
			return nil, err
		}
		res, err := analysis.Analyze(bp)
		if err != nil {
			return nil, err
		}
		t0 := time.Now()
		if _, err := partition.Partition(res.CRG.Graph, partition.Options{K: 2, Seed: 1, Epsilon: BalanceEps}); err != nil {
			return nil, err
		}
		crgPart := time.Since(t0)
		t1 := time.Now()
		if _, err := partition.Partition(res.ODG.Graph, partition.Options{K: 2, Seed: 1, Epsilon: BalanceEps}); err != nil {
			return nil, err
		}
		odgPart := time.Since(t1)
		t2 := time.Now()
		if _, err := rewrite.Rewrite(bp, res, 2); err != nil {
			return nil, err
		}
		rows = append(rows, Table2Row{
			Benchmark:      name,
			ConstructCRG:   res.CRGTime,
			ConstructODG:   res.ODGTime,
			ConstructFacts: res.FactsTime,
			PartitionCRG:   crgPart,
			PartitionODG:   odgPart,
			Rewrite:        time.Since(t2),
		})
	}
	return rows, nil
}

// FormatTable2 renders Table 2 (microseconds, since the Go pipeline is
// orders of magnitude faster than the 2005 Java pipeline).
func FormatTable2(rows []Table2Row) string {
	var b strings.Builder
	b.WriteString("Table 2: execution time breakdown of code distribution (µs)\n")
	b.WriteString(fmt.Sprintf("%-10s %12s %12s %12s %12s %12s %10s\n",
		"benchmark", "constructCRG", "constructODG", "facts", "partCRG", "partODG", "rewrite"))
	us := func(d time.Duration) int64 { return d.Microseconds() }
	for _, r := range rows {
		b.WriteString(fmt.Sprintf("%-10s %12d %12d %12d %12d %12d %10d\n",
			r.Benchmark, us(r.ConstructCRG), us(r.ConstructODG), us(r.ConstructFacts),
			us(r.PartitionCRG), us(r.PartitionODG), us(r.Rewrite)))
	}
	return b.String()
}

// Fig11Row is one bar of Figure 11: distributed execution performance
// relative to centralized execution on the compute node.
type Fig11Row struct {
	Benchmark   string
	Centralized float64 // simulated seconds, whole program on 800 MHz
	Distributed float64 // simulated seconds, 2 nodes (1.7 GHz + 800 MHz)
	RelativePct float64 // centralized/distributed × 100 (paper's metric)
	Messages    int64
}

// Figure11 reproduces the distributed-vs-centralized comparison on the
// simulated testbed.
func Figure11() ([]Fig11Row, error) {
	var rows []Fig11Row
	for _, name := range bench.Table1Names() {
		bp, err := compileBench(name)
		if err != nil {
			return nil, err
		}
		// Centralized: the sequential program on the compute node.
		seqVM, err := vm.New(bp.Clone())
		if err != nil {
			return nil, err
		}
		seqVM.Out = &strings.Builder{}
		seqVM.Time = &vm.TimeModel{CyclesPerSecond: ComputeNodeHz}
		seqVM.MaxSteps = 2_000_000_000
		if err := seqVM.RunMain(); err != nil {
			return nil, fmt.Errorf("%s centralized: %w", name, err)
		}
		centralized := seqVM.SimSeconds()

		// Distributed: 2-way partition over service + compute nodes.
		res, err := analysis.Analyze(bp)
		if err != nil {
			return nil, err
		}
		if _, err := partition.Partition(res.ODG.Graph, partition.Options{K: 2, Seed: 1, Epsilon: BalanceEps}); err != nil {
			return nil, err
		}
		rw, err := rewrite.Rewrite(bp, res, 2)
		if err != nil {
			return nil, err
		}
		var out strings.Builder
		cluster, err := runtime.NewCluster(rw.Nodes, rw.Plan, transport.NewInProc(2), runtime.Options{
			Out:       &out,
			CPUSpeeds: []float64{ServiceNodeHz, ComputeNodeHz},
			Net:       &runtime.NetModel{LatencySec: EthernetLatencySec, BytesPerSec: EthernetBytesPerSec},
			MaxSteps:  2_000_000_000,
		})
		if err != nil {
			return nil, err
		}
		if err := cluster.Run(); err != nil {
			return nil, fmt.Errorf("%s distributed: %w", name, err)
		}
		distributed := cluster.SimSeconds()
		rel := 0.0
		if distributed > 0 {
			rel = centralized / distributed * 100
		}
		rows = append(rows, Fig11Row{
			Benchmark:   name,
			Centralized: centralized,
			Distributed: distributed,
			RelativePct: rel,
			Messages:    cluster.TotalStats().MessagesSent,
		})
	}
	return rows, nil
}

// FormatFigure11 renders the comparison with an ASCII bar per benchmark.
func FormatFigure11(rows []Fig11Row) string {
	var b strings.Builder
	b.WriteString("Figure 11: distributed vs centralized execution (simulated testbed:\n")
	b.WriteString("1.7GHz service node + 800MHz compute node, 100Mbit Ethernet; 100% = centralized)\n")
	b.WriteString(fmt.Sprintf("%-10s %14s %14s %9s %6s\n",
		"benchmark", "centralized(s)", "distributed(s)", "relative", "msgs"))
	for _, r := range rows {
		bar := strings.Repeat("#", int(r.RelativePct/5))
		b.WriteString(fmt.Sprintf("%-10s %14.6f %14.6f %8.1f%% %6d %s\n",
			r.Benchmark, r.Centralized, r.Distributed, r.RelativePct, r.Messages, bar))
	}
	return b.String()
}

// Table3Row is one benchmark row of Table 3: wall-clock times under the
// baseline and each profiling metric.
type Table3Row struct {
	Benchmark string
	// Times[m] is the wall time under metric m (profiler.Metrics()
	// order); Baseline is with profiling compiled in but disabled.
	Baseline time.Duration
	Times    map[profiler.Metric]time.Duration
}

// Table3 measures profiler overheads across the Table 3 benchmark set.
func Table3(repeats int) ([]Table3Row, error) {
	if repeats < 1 {
		repeats = 1
	}
	var rows []Table3Row
	for _, name := range bench.Table3Names() {
		bp, err := compileBench(name)
		if err != nil {
			return nil, err
		}
		row := Table3Row{Benchmark: name, Times: map[profiler.Metric]time.Duration{}}
		runOnce := func(metric profiler.Metric) (time.Duration, error) {
			var best time.Duration
			for r := 0; r < repeats; r++ {
				machine, err := vm.New(bp.Clone())
				if err != nil {
					return 0, err
				}
				machine.Out = &strings.Builder{}
				machine.MaxSteps = 2_000_000_000
				profiler.Attach(machine, metric)
				start := time.Now()
				if err := machine.RunMain(); err != nil {
					return 0, err
				}
				el := time.Since(start)
				if best == 0 || el < best {
					best = el
				}
			}
			return best, nil
		}
		if row.Baseline, err = runOnce(profiler.None); err != nil {
			return nil, fmt.Errorf("%s baseline: %w", name, err)
		}
		for _, metric := range profiler.Metrics() {
			if row.Times[metric], err = runOnce(metric); err != nil {
				return nil, fmt.Errorf("%s %v: %w", name, metric, err)
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatTable3 renders Table 3 with the paper's total and overhead rows.
func FormatTable3(rows []Table3Row) string {
	var b strings.Builder
	metrics := profiler.Metrics()
	b.WriteString("Table 3: profiler evaluation (wall-clock ms; last rows: totals and overhead vs baseline)\n")
	b.WriteString(fmt.Sprintf("%-14s %9s", "benchmark", "Baseline"))
	for _, m := range metrics {
		b.WriteString(fmt.Sprintf(" %9s", shortMetric(m)))
	}
	b.WriteString("\n")
	ms := func(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }
	totalBase := 0.0
	totals := make([]float64, len(metrics))
	for _, r := range rows {
		b.WriteString(fmt.Sprintf("%-14s %9.2f", r.Benchmark, ms(r.Baseline)))
		totalBase += ms(r.Baseline)
		for i, m := range metrics {
			b.WriteString(fmt.Sprintf(" %9.2f", ms(r.Times[m])))
			totals[i] += ms(r.Times[m])
		}
		b.WriteString("\n")
	}
	b.WriteString(fmt.Sprintf("%-14s %9.2f", "Total:", totalBase))
	for i := range metrics {
		b.WriteString(fmt.Sprintf(" %9.2f", totals[i]))
	}
	b.WriteString("\n")
	b.WriteString(fmt.Sprintf("%-14s %9s", "Overhead:", "0.00%"))
	sum := 0.0
	for i := range metrics {
		ov := (totals[i] - totalBase) / totalBase * 100
		sum += ov
		b.WriteString(fmt.Sprintf(" %8.2f%%", ov))
	}
	b.WriteString("\n")
	b.WriteString(fmt.Sprintf("Average overhead across metrics: %.2f%%\n", sum/float64(len(metrics))))
	return b.String()
}

func shortMetric(m profiler.Metric) string {
	switch m {
	case profiler.MethodDuration:
		return "Duration"
	case profiler.MethodFrequency:
		return "Frequency"
	case profiler.HotMethods:
		return "HotMeth"
	case profiler.HotPaths:
		return "HotPaths"
	case profiler.MemoryAllocation:
		return "Memory"
	case profiler.DynamicCallGraph:
		return "CallGraph"
	}
	return m.String()
}

// MessageRow is one row of the message-optimisation A/B comparison:
// the same distributed run with the message-exchange optimisations
// (proxy-side caching, asynchronous void calls, batching) on and off,
// a third run under adaptive repartitioning (the plan as an initial
// placement with live object migration), and a fourth under the
// coherence layer's read-replication.
type MessageRow struct {
	Benchmark   string
	BaseMsgs    int64
	BaseBytes   int64
	OptMsgs     int64
	OptBytes    int64
	CacheHits   int64
	AsyncCalls  int64
	BatchFrames int64
	AdaptMsgs   int64
	Migrations  int64
	ReplMsgs    int64
	ReplHits    int64
	Invals      int64
}

// TableMessages measures the optimisations' effect on messages sent
// and bytes on the wire across the Table 1 benchmarks.
func TableMessages() ([]MessageRow, error) {
	var rows []MessageRow
	for _, name := range bench.Table1Names() {
		bp, err := compileBench(name)
		if err != nil {
			return nil, err
		}
		res, err := analysis.Analyze(bp)
		if err != nil {
			return nil, err
		}
		if _, err := partition.Partition(res.ODG.Graph, partition.Options{K: 2, Seed: 1, Epsilon: BalanceEps}); err != nil {
			return nil, err
		}
		rw, err := rewrite.Rewrite(bp, res, 2)
		if err != nil {
			return nil, err
		}
		rwAdapt, err := rewrite.RewriteAdaptive(bp, res, 2)
		if err != nil {
			return nil, err
		}
		rwRepl, err := rewrite.RewriteWith(bp, res, 2, rewrite.Options{Replicate: true})
		if err != nil {
			return nil, err
		}
		run := func(r *rewrite.Result, opts runtime.Options) (runtime.NodeStats, error) {
			var out strings.Builder
			opts.Out = &out
			opts.MaxSteps = 2_000_000_000
			cluster, err := runtime.NewCluster(r.Nodes, r.Plan, transport.NewInProc(2), opts)
			if err != nil {
				return runtime.NodeStats{}, err
			}
			if err := cluster.Run(); err != nil {
				return runtime.NodeStats{}, fmt.Errorf("%s (unoptimized=%v adaptive=%v replicate=%v): %w",
					name, opts.Unoptimized, opts.AdaptEvery > 0, opts.Replicate, err)
			}
			return cluster.TotalStats(), nil
		}
		base, err := run(rw, runtime.Options{Unoptimized: true})
		if err != nil {
			return nil, err
		}
		opt, err := run(rw, runtime.Options{})
		if err != nil {
			return nil, err
		}
		adapt, err := run(rwAdapt, runtime.Options{AdaptEvery: 32})
		if err != nil {
			return nil, err
		}
		repl, err := run(rwRepl, runtime.Options{Replicate: true})
		if err != nil {
			return nil, err
		}
		rows = append(rows, MessageRow{
			Benchmark: name,
			BaseMsgs:  base.MessagesSent, BaseBytes: base.BytesSent,
			OptMsgs: opt.MessagesSent, OptBytes: opt.BytesSent,
			CacheHits:   opt.CacheHits,
			AsyncCalls:  opt.AsyncCalls,
			BatchFrames: opt.BatchFrames,
			AdaptMsgs:   adapt.MessagesSent,
			Migrations:  adapt.Migrations,
			ReplMsgs:    repl.MessagesSent,
			ReplHits:    repl.ReplicaHits,
			Invals:      repl.Invalidations,
		})
	}
	return rows, nil
}

// FormatTableMessages renders the A/B comparison with reduction
// percentages.
func FormatTableMessages(rows []MessageRow) string {
	var b strings.Builder
	b.WriteString("Message-exchange optimisation: messages and bytes, optimised vs baseline protocol\n")
	b.WriteString("(adapt = messages under adaptive repartitioning; migr = live migrations it executed;\n")
	b.WriteString(" repl = messages under read-replication; rhit/inv = replica hits and invalidations)\n")
	b.WriteString(fmt.Sprintf("%-10s %6s %6s %7s | %8s %8s %7s | %5s %5s %5s | %6s %5s | %6s %5s %4s\n",
		"benchmark", "msgs0", "msgs", "red", "bytes0", "bytes", "red", "hit", "async", "batch", "adapt", "migr", "repl", "rhit", "inv"))
	red := func(base, opt int64) string {
		if base == 0 {
			return "-"
		}
		return fmt.Sprintf("%.0f%%", float64(base-opt)/float64(base)*100)
	}
	for _, r := range rows {
		b.WriteString(fmt.Sprintf("%-10s %6d %6d %7s | %8d %8d %7s | %5d %5d %5d | %6d %5d | %6d %5d %4d\n",
			r.Benchmark, r.BaseMsgs, r.OptMsgs, red(r.BaseMsgs, r.OptMsgs),
			r.BaseBytes, r.OptBytes, red(r.BaseBytes, r.OptBytes),
			r.CacheHits, r.AsyncCalls, r.BatchFrames, r.AdaptMsgs, r.Migrations,
			r.ReplMsgs, r.ReplHits, r.Invals))
	}
	return b.String()
}
