package experiments

import (
	"strings"
	"testing"

	"autodist/internal/analysis"
	"autodist/internal/compile"
	"autodist/internal/partition"
	"autodist/internal/rewrite"
	"autodist/internal/runtime"
	"autodist/internal/transport"
	"autodist/internal/vm"
)

func TestTable1ShapeMatchesPaper(t *testing.T) {
	rows, err := Table1()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("got %d rows, want 8", len(rows))
	}
	for _, r := range rows {
		// The paper's qualitative properties: non-trivial class and
		// method counts, graphs of manageable size, small edgecuts.
		if r.Classes < 3 || r.Methods < 10 {
			t.Errorf("%s: implausible size #C=%d #M=%d", r.Benchmark, r.Classes, r.Methods)
		}
		if r.CRGNodes == 0 || r.ODGNodes == 0 {
			t.Errorf("%s: empty graphs", r.Benchmark)
		}
		if r.CRGEdgeCut > r.CRGEdges || r.ODGEdgeCut > r.ODGEdges {
			t.Errorf("%s: edgecut exceeds edges", r.Benchmark)
		}
		if r.KB <= 0 {
			t.Errorf("%s: zero size", r.Benchmark)
		}
	}
	// db has the richest object structure in both the paper and here.
	var db, method Table1Row
	for _, r := range rows {
		if r.Benchmark == "db" {
			db = r
		}
		if r.Benchmark == "method" {
			method = r
		}
	}
	if db.ODGEdges <= method.ODGEdges {
		t.Errorf("db ODG (%d edges) should exceed method (%d)", db.ODGEdges, method.ODGEdges)
	}
	out := FormatTable1(rows)
	if !strings.Contains(out, "create") || !strings.Contains(out, "db") {
		t.Error("formatted table incomplete")
	}
}

func TestTable2PartitioningIsFastPhase(t *testing.T) {
	rows, err := Table2()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		// The paper's observation: CRG construction dominates, the
		// partitioning phase is comparatively small (≈10ms of their
		// seconds-scale pipeline). Guard the ordering, not absolutes.
		if r.ConstructCRG <= 0 || r.Rewrite <= 0 {
			t.Errorf("%s: missing timings %+v", r.Benchmark, r)
		}
		if r.PartitionODG > r.ConstructCRG*100 {
			t.Errorf("%s: partitioning (%v) implausibly dominates construction (%v)",
				r.Benchmark, r.PartitionODG, r.ConstructCRG)
		}
	}
	_ = FormatTable2(rows)
}

func TestFigure11ShapeMatchesPaper(t *testing.T) {
	rows, err := Figure11()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("got %d rows", len(rows))
	}
	speedups := 0
	slowdowns := 0
	for _, r := range rows {
		if r.Distributed <= 0 || r.Centralized <= 0 {
			t.Errorf("%s: missing simulated times %+v", r.Benchmark, r)
			continue
		}
		// Distribution cannot beat the pure CPU ratio (1700/800).
		if r.RelativePct > 230 {
			t.Errorf("%s: relative %.1f%% exceeds hardware bound", r.Benchmark, r.RelativePct)
		}
		// Nothing should be pathological (the paper's worst is 79%).
		if r.RelativePct < 25 {
			t.Errorf("%s: relative %.1f%% is pathological (bad partition?)", r.Benchmark, r.RelativePct)
		}
		if r.RelativePct >= 100 {
			speedups++
		} else {
			slowdowns++
		}
	}
	// The paper's shape: most benchmarks at or above parity, a couple
	// below (little overhead or speed-up).
	if speedups < 4 {
		t.Errorf("only %d/8 benchmarks show speedup; paper shows mostly parity-or-better", speedups)
	}
	if slowdowns == 0 {
		t.Log("note: no benchmark showed slowdown (paper has a few near 80-100%)")
	}
	_ = FormatFigure11(rows)
}

func TestFigure3And4VCG(t *testing.T) {
	f3, err := Figure3()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"DT_Bank", "DT_Account", "ST_Bank", `label: "use"`, "export", "import"} {
		if !strings.Contains(f3, want) {
			t.Errorf("Figure 3 missing %q", want)
		}
	}
	f4, err := Figure4()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"1Bank", "*Account", "create", "[0]"} {
		if !strings.Contains(f4, want) {
			t.Errorf("Figure 4 missing %q", want)
		}
	}
}

func TestFigure5Through7Listings(t *testing.T) {
	f5, err := Figure5()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"BB0 (ENTRY)", "MOVE_I R1 int, IConst: 4", "IFCMP_I", "RETURN_I"} {
		if !strings.Contains(f5, want) {
			t.Errorf("Figure 5 missing %q:\n%s", want, f5)
		}
	}
	f6, err := Figure6()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(f6, "MOVE_I") || !strings.Contains(f6, "IConst 4") {
		t.Errorf("Figure 6 malformed:\n%s", f6)
	}
	f7, err := Figure7()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"mov eax, 4", "jle BB", "ret eax", "mov R1, #4", "ble BB", "mov PC, R14"} {
		if !strings.Contains(f7, want) {
			t.Errorf("Figure 7 missing %q:\n%s", want, f7)
		}
	}
}

func TestFigures8And9Transforms(t *testing.T) {
	out, err := Figures8And9()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"Original Bank.main",
		"Transformed Bank.main",
		"new DependentObject",
		"invokespecial DependentObject.<init>:(IT[LObject;)V",
		"invokevirtual DependentObject.access:(IT[LObject;)LObject;",
		`ldc "getSavings:()I"`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Figures 8/9 missing %q", want)
		}
	}
}

func TestTable3OverheadOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock measurement")
	}
	rows, err := Table3(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 10 {
		t.Fatalf("got %d rows, want 10", len(rows))
	}
	out := FormatTable3(rows)
	if !strings.Contains(out, "Overhead:") || !strings.Contains(out, "Average overhead") {
		t.Errorf("Table 3 format incomplete:\n%s", out)
	}
}

func TestMessageOptimizationReducesTraffic(t *testing.T) {
	rows, err := TableMessages()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
	var baseMsgs, optMsgs, baseBytes, optBytes int64
	for _, r := range rows {
		baseMsgs += r.BaseMsgs
		optMsgs += r.OptMsgs
		baseBytes += r.BaseBytes
		optBytes += r.OptBytes
		if r.OptMsgs > r.BaseMsgs {
			t.Errorf("%s: optimised run sent MORE messages (%d > %d)", r.Benchmark, r.OptMsgs, r.BaseMsgs)
		}
	}
	if optMsgs >= baseMsgs {
		t.Errorf("total messages not reduced: %d vs %d", optMsgs, baseMsgs)
	}
	if optBytes >= baseBytes {
		t.Errorf("total bytes not reduced: %d vs %d", optBytes, baseBytes)
	}
}

func TestAdaptiveBeatsStaticOnPhaseShift(t *testing.T) {
	// The acceptance criterion of the adaptive subsystem: on the
	// phase-shifting workload (whose hot object set moves mid-run),
	// live migration must cut total messages well below the static
	// plan — control traffic (polls, migrate/transfer frames)
	// included.
	rows, err := TableAdaptive()
	if err != nil {
		t.Fatal(err)
	}
	var ps *AdaptiveRow
	for i := range rows {
		if rows[i].Workload == "phaseshift" {
			ps = &rows[i]
		}
	}
	if ps == nil {
		t.Fatal("phaseshift row missing from adaptive table")
	}
	if ps.Migrations == 0 {
		t.Errorf("no live migrations on the phase-shifting workload: %+v", *ps)
	}
	if ps.StaticMsgs < 100 {
		t.Fatalf("static phase-shift run sent only %d messages — workload no longer exercises the wire", ps.StaticMsgs)
	}
	if ps.AdaptMsgs*2 >= ps.StaticMsgs {
		t.Errorf("adaptive run sent %d messages vs static %d — expected < half", ps.AdaptMsgs, ps.StaticMsgs)
	}
}

func TestAdaptiveOutputsMatchStatic(t *testing.T) {
	// Both modes of every A/B workload must compute the same results
	// (checked indirectly through run errors by TableAdaptive; here the
	// phase-shift checksum is pinned against the sequential run).
	bp, _, err := compile.CompileSource(PhaseShiftSource)
	if err != nil {
		t.Fatal(err)
	}
	seqVM, err := vm.New(bp.Clone())
	if err != nil {
		t.Fatal(err)
	}
	var want strings.Builder
	seqVM.Out = &want
	seqVM.MaxSteps = 2_000_000_000
	if err := seqVM.RunMain(); err != nil {
		t.Fatal(err)
	}
	res, err := analysis.Analyze(bp)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := partition.Partition(res.ODG.Graph, partition.Options{K: 2, Seed: 1, Epsilon: BalanceEps}); err != nil {
		t.Fatal(err)
	}
	rw, err := rewrite.RewriteAdaptive(bp, res, 2)
	if err != nil {
		t.Fatal(err)
	}
	var got strings.Builder
	cluster, err := runtime.NewCluster(rw.Nodes, rw.Plan, transport.NewInProc(2), runtime.Options{
		Out: &got, MaxSteps: 2_000_000_000, AdaptEvery: 32,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := cluster.Run(); err != nil {
		t.Fatal(err)
	}
	if got.String() != want.String() {
		t.Errorf("adaptive phase-shift output %q != sequential %q", got.String(), want.String())
	}
}

func TestReplicationBeatsRemoteReads(t *testing.T) {
	// The acceptance criterion of the coherence layer: on the
	// read-mostly workload (a shared directory object, two reader
	// nodes, one write per phase) read-replication must cut total
	// messages by at least half versus the static plan — replica
	// fetches and invalidation traffic included. Outputs are checked
	// against the sequential run inside RunReadMostlyAB.
	static, replicated, err := RunReadMostlyAB()
	if err != nil {
		t.Fatal(err)
	}
	if static.MessagesSent < 100 {
		t.Fatalf("static readmostly run sent only %d messages — workload no longer exercises the wire",
			static.MessagesSent)
	}
	if replicated.ReplicaHits == 0 || replicated.ReplicaFetches == 0 {
		t.Errorf("replication never engaged: %+v", replicated)
	}
	if replicated.Invalidations == 0 {
		t.Errorf("writes never invalidated replicas: %+v", replicated)
	}
	if replicated.MessagesSent*2 > static.MessagesSent {
		t.Errorf("replicated run sent %d messages vs static %d — expected ≤ half",
			replicated.MessagesSent, static.MessagesSent)
	}
}

func TestReplicationTableColumns(t *testing.T) {
	// The replication table renders with its expected columns and
	// workloads (the static-path invariance itself is pinned by
	// TestReplicateOffMatchesPlainRewrite).
	rows, err := TableReplication()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 2 {
		t.Fatalf("replication table too short: %+v", rows)
	}
	out := FormatTableReplication(rows)
	for _, col := range []string{"workload", "msgs-rp", "hits", "inval", "readmostly", "bank"} {
		if !strings.Contains(out, col) {
			t.Errorf("formatted table missing %q:\n%s", col, out)
		}
	}
}

// TestReplicateOffMatchesPlainRewrite pins the -replicate=off
// acceptance criterion numerically: distributing through the new
// RewriteWith entry point with replication off must produce exactly
// the same message and byte counts as the original Rewrite path on
// the Table 1 benchmarks' representative workloads — the coherence
// refactor may not perturb the static protocol at all.
func TestReplicateOffMatchesPlainRewrite(t *testing.T) {
	for _, tc := range []struct {
		name, src string
	}{
		{"bank", BankExampleSource},
		{"readmostly", ReadMostlySource},
		{"phaseshift", PhaseShiftSource},
	} {
		run := func(via string) runtime.NodeStats {
			t.Helper()
			bp, _, err := compile.CompileSource(tc.src)
			if err != nil {
				t.Fatal(err)
			}
			res, err := analysis.Analyze(bp)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := partition.Partition(res.ODG.Graph, partition.Options{K: 2, Seed: 1, Epsilon: BalanceEps}); err != nil {
				t.Fatal(err)
			}
			var rw *rewrite.Result
			if via == "plain" {
				rw, err = rewrite.Rewrite(bp, res, 2)
			} else {
				rw, err = rewrite.RewriteWith(bp, res, 2, rewrite.Options{})
			}
			if err != nil {
				t.Fatal(err)
			}
			var out strings.Builder
			cluster, err := runtime.NewCluster(rw.Nodes, rw.Plan, transport.NewInProc(2), runtime.Options{
				Out: &out, MaxSteps: 2_000_000_000,
			})
			if err != nil {
				t.Fatal(err)
			}
			if err := cluster.Run(); err != nil {
				t.Fatalf("%s via %s: %v", tc.name, via, err)
			}
			return cluster.TotalStats()
		}
		plain, zero := run("plain"), run("zero-options")
		if plain.MessagesSent != zero.MessagesSent || plain.BytesSent != zero.BytesSent {
			t.Errorf("%s: RewriteWith{} diverged from Rewrite: %d/%d msgs, %d/%d bytes",
				tc.name, plain.MessagesSent, zero.MessagesSent, plain.BytesSent, zero.BytesSent)
		}
		if plain.ReplicaHits != 0 || plain.ReplicaFetches != 0 || plain.Invalidations != 0 {
			t.Errorf("%s: replication counters active on the static path: %+v", tc.name, plain)
		}
	}
}
