package transport

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"autodist/internal/wire"
)

// fastRel tunes the reliability layer for tests: retransmission heals
// injected faults within milliseconds, while the failure deadline is
// long enough (2ms × 200 misses = 400ms) that no plausible run of
// injected drops can mimic a death.
var fastRel = ReliableOptions{
	HeartbeatInterval: 2 * time.Millisecond,
	HeartbeatMisses:   200,
	RetransmitTimeout: 2 * time.Millisecond,
}

// reliableChaosPair builds a two-node in-process fabric with the chaos
// layer under the reliability layer — the production stacking order.
func reliableChaosPair(t *testing.T, rules ChaosRules) (a, b Endpoint, ctl *Chaos) {
	t.Helper()
	ctl, eps := NewChaos(NewInProc(2), rules)
	a = NewReliable(eps[0], fastRel)
	b = NewReliable(eps[1], fastRel)
	t.Cleanup(func() {
		_ = a.Close()
		_ = b.Close()
	})
	return a, b, ctl
}

// protocolKinds spans the full frame-kind space the runtime sends
// (NEW=1 … REHOME=16); the reliability guarantee is kind-agnostic and
// must hold for every one of them.
const protocolKinds = 16

// TestReliableExactlyOnceUnderChaos is the transport tentpole test:
// under every chaos profile — single drops, burst drops, duplicates,
// reordering, and all at once — a sequenced stream of frames covering
// every protocol kind is delivered exactly once, in order, with
// payloads intact. Seeded rules make each case's fault pattern
// deterministic.
func TestReliableExactlyOnceUnderChaos(t *testing.T) {
	cases := []struct {
		name            string
		rules           ChaosRules
		wantRetransmits bool // dropped frames must have been resent
		wantRecovered   bool // dup/reorder must have been healed on receive
	}{
		{"clean", ChaosRules{Seed: 7}, false, false},
		{"single drop", ChaosRules{Seed: 7, Drop: 0.02}, true, false},
		{"burst drop", ChaosRules{Seed: 7, Drop: 0.4}, true, false},
		{"duplicate", ChaosRules{Seed: 7, Dup: 0.3}, false, true},
		{"reorder", ChaosRules{Seed: 7, Reorder: 0.3}, false, true},
		{"mixed", ChaosRules{Seed: 7, Drop: 0.15, Dup: 0.15, Reorder: 0.15}, true, true},
	}
	const frames = 300
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			a, b, _ := reliableChaosPair(t, tc.rules)
			recvErr := make(chan error, 1)
			go func() {
				for i := 0; i < frames; i++ {
					m, err := b.Recv()
					if err != nil {
						recvErr <- fmt.Errorf("recv %d: %w", i, err)
						return
					}
					wantKind := uint8(1 + i%protocolKinds)
					if m.Kind == wire.KindPeerDown {
						recvErr <- fmt.Errorf("spurious PeerDown for node %d after %d frames", m.From, i)
						return
					}
					if m.Tag != uint64(i) {
						recvErr <- fmt.Errorf("frame %d arrived with tag %d: lost, doubled or reordered", i, m.Tag)
						return
					}
					if m.Kind != wantKind {
						recvErr <- fmt.Errorf("frame %d has kind %d, want %d", i, m.Kind, wantKind)
						return
					}
					if want := fmt.Sprintf("payload-%d", i); string(m.Payload) != want {
						recvErr <- fmt.Errorf("frame %d payload %q, want %q", i, m.Payload, want)
						return
					}
				}
				recvErr <- nil
			}()
			for i := 0; i < frames; i++ {
				msg := Message{
					To: 1, Tag: uint64(i), TID: 3, Kind: uint8(1 + i%protocolKinds),
					Payload: []byte(fmt.Sprintf("payload-%d", i)),
				}
				if err := a.Send(msg); err != nil {
					t.Fatalf("send %d: %v", i, err)
				}
			}
			select {
			case err := <-recvErr:
				if err != nil {
					t.Fatal(err)
				}
			case <-time.After(30 * time.Second):
				t.Fatal("receiver did not observe all frames: delivery stalled")
			}
			sf, _ := Faults(a)
			rf, _ := Faults(b)
			if tc.wantRetransmits && sf.Retransmits == 0 {
				t.Errorf("chaos dropped frames but the sender recorded no retransmits")
			}
			if tc.wantRecovered && rf.Recovered == 0 {
				t.Errorf("chaos duplicated/reordered frames but the receiver recorded no recoveries")
			}
			if sf.PeersDown != 0 || rf.PeersDown != 0 {
				t.Errorf("spurious peer-down verdicts: sender %d, receiver %d", sf.PeersDown, rf.PeersDown)
			}
		})
	}
}

// TestNeverReachablePeerDown pins the detection contract for a peer
// that was never reachable: Send itself never errors (the frame parks
// in the retransmit ring), the failure detector synthesises a PeerDown
// verdict within the heartbeat deadline, and every later Send fails
// fast with an error naming the peer and the frame kind.
func TestNeverReachablePeerDown(t *testing.T) {
	ctl, eps := NewChaos(NewInProc(2), ChaosRules{})
	opts := ReliableOptions{HeartbeatInterval: 5 * time.Millisecond}
	a := NewReliable(eps[0], opts)
	t.Cleanup(func() { _ = a.Close() })
	ctl.Kill(1) // node 1 never comes up

	start := time.Now()
	if err := a.Send(Message{To: 1, Kind: 7, Tag: 1, Payload: []byte("x")}); err != nil {
		t.Fatalf("send to a not-yet-declared-dead peer must be absorbed, got %v", err)
	}
	m, err := a.Recv()
	if err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if m.Kind != wire.KindPeerDown || m.From != 1 {
		t.Fatalf("expected PeerDown(from=1), got kind %d from %d", m.Kind, m.From)
	}
	if elapsed < opts.Deadline() {
		t.Errorf("peer declared dead after %v, before the %v deadline", elapsed, opts.Deadline())
	}
	if limit := 20 * opts.Deadline(); elapsed > limit {
		t.Errorf("peer-down verdict took %v, want within %v of the deadline", elapsed, limit)
	}

	err = a.Send(Message{To: 1, Kind: 9})
	if !IsPeerDown(err) || !errors.Is(err, ErrPeerDown) {
		t.Fatalf("send to a dead peer: %v, want ErrPeerDown", err)
	}
	if !strings.Contains(err.Error(), "node 1") || !strings.Contains(err.Error(), "kind 9") {
		t.Errorf("dead-peer error %q lacks peer id and frame kind context", err)
	}
	if f, _ := Faults(a); f.PeersDown != 1 {
		t.Errorf("FaultCounters().PeersDown = %d, want 1", f.PeersDown)
	}
}

// TestReliablePassesUnsequencedFrames: frames from a peer without the
// reliability wrapper (Seq 0) pass straight through — cross-version
// interop with pre-reliability nodes.
func TestReliablePassesUnsequencedFrames(t *testing.T) {
	eps := NewInProc(2)
	b := NewReliable(eps[1], fastRel)
	t.Cleanup(func() { _ = b.Close() })
	if err := eps[0].Send(Message{To: 1, Tag: 42, Kind: 5, Payload: []byte("bare")}); err != nil {
		t.Fatal(err)
	}
	m, err := b.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if m.Tag != 42 || m.Kind != 5 || string(m.Payload) != "bare" {
		t.Fatalf("unsequenced frame mangled: %+v", m)
	}
}

// TestChaosDeterministic: the same seed replays the same fault
// pattern — two identical runs of the bare chaos layer (no healing)
// deliver the identical frame sequence.
func TestChaosDeterministic(t *testing.T) {
	deliver := func() []uint64 {
		_, eps := NewChaos(NewInProc(2), ChaosRules{Seed: 11, Drop: 0.2, Dup: 0.2, Reorder: 0.2})
		defer eps[0].Close()
		defer eps[1].Close()
		for i := 0; i < 100; i++ {
			if err := eps[0].Send(Message{To: 1, Tag: uint64(i), Kind: 1}); err != nil {
				t.Fatal(err)
			}
		}
		// Drain until the link has been quiet for a while: with no
		// healing layer some frames (including any sentinel we might
		// send) are simply gone, so a quiet-period cutoff is the only
		// hang-free way to collect "everything that arrived".
		got := make(chan uint64)
		go func() {
			defer close(got)
			for {
				m, err := eps[1].Recv()
				if err != nil {
					return
				}
				got <- m.Tag
			}
		}()
		var tags []uint64
		for {
			select {
			case tag, ok := <-got:
				if !ok {
					return tags
				}
				tags = append(tags, tag)
			case <-time.After(300 * time.Millisecond):
				return tags
			}
		}
	}
	first, second := deliver(), deliver()
	if len(first) != len(second) {
		t.Fatalf("same seed delivered %d then %d frames", len(first), len(second))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("same seed diverged at frame %d: %d vs %d", i, first[i], second[i])
		}
	}
}

// TestChaosRulesValidate pins the probability range contract.
func TestChaosRulesValidate(t *testing.T) {
	for _, tc := range []struct {
		rules ChaosRules
		ok    bool
	}{
		{ChaosRules{}, true},
		{ChaosRules{Drop: 0.99, Dup: 0.5, Reorder: 0}, true},
		{ChaosRules{Drop: 1.0}, false},
		{ChaosRules{Dup: -0.1}, false},
		{ChaosRules{Reorder: 2}, false},
	} {
		err := tc.rules.Validate()
		if tc.ok && err != nil {
			t.Errorf("%+v: %v", tc.rules, err)
		}
		if !tc.ok && err == nil {
			t.Errorf("%+v accepted", tc.rules)
		}
	}
}
