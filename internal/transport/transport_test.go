package transport

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func testFabric(t *testing.T, eps []Endpoint) {
	t.Helper()
	n := len(eps)

	// Ping-pong between 0 and every other node.
	var wg sync.WaitGroup
	for peer := 1; peer < n; peer++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			msg, err := eps[p].Recv()
			if err != nil {
				t.Errorf("node %d recv: %v", p, err)
				return
			}
			if msg.From != 0 || string(msg.Payload) != fmt.Sprintf("ping %d", p) {
				t.Errorf("node %d got %+v", p, msg)
			}
			err = eps[p].Send(Message{To: 0, Tag: msg.Tag, Payload: []byte("pong")})
			if err != nil {
				t.Errorf("node %d send: %v", p, err)
			}
		}(peer)
	}
	for peer := 1; peer < n; peer++ {
		if err := eps[0].Send(Message{To: peer, Tag: uint64(peer), Payload: []byte(fmt.Sprintf("ping %d", peer))}); err != nil {
			t.Fatalf("send to %d: %v", peer, err)
		}
	}
	got := map[uint64]bool{}
	for peer := 1; peer < n; peer++ {
		msg, err := eps[0].Recv()
		if err != nil {
			t.Fatal(err)
		}
		if string(msg.Payload) != "pong" {
			t.Errorf("unexpected payload %q", msg.Payload)
		}
		got[msg.Tag] = true
	}
	if len(got) != n-1 {
		t.Errorf("got %d distinct pongs, want %d", len(got), n-1)
	}
	wg.Wait()
	for _, ep := range eps {
		_ = ep.Close()
	}
}

func TestInProcFabric(t *testing.T) {
	testFabric(t, NewInProc(4))
}

func TestTCPFabric(t *testing.T) {
	eps, err := NewTCPCluster(3)
	if err != nil {
		t.Fatal(err)
	}
	testFabric(t, eps)
}

func TestInProcOrderPreservedPerPair(t *testing.T) {
	eps := NewInProc(2)
	const n = 100
	for i := 0; i < n; i++ {
		if err := eps[0].Send(Message{To: 1, Tag: uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		msg, err := eps[1].Recv()
		if err != nil {
			t.Fatal(err)
		}
		if msg.Tag != uint64(i) {
			t.Fatalf("message %d arrived out of order (tag %d)", i, msg.Tag)
		}
	}
}

func TestRecvAfterCloseReturnsError(t *testing.T) {
	eps := NewInProc(2)
	done := make(chan error, 1)
	go func() {
		_, err := eps[1].Recv()
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	_ = eps[1].Close()
	select {
	case err := <-done:
		if err != ErrClosed {
			t.Errorf("err = %v, want ErrClosed", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Recv did not unblock on Close")
	}
}

func TestTCPRecvAfterClose(t *testing.T) {
	eps, err := NewTCPCluster(2)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := eps[1].Recv()
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	_ = eps[1].Close()
	select {
	case err := <-done:
		if err != ErrClosed {
			t.Errorf("err = %v, want ErrClosed", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Recv did not unblock on Close")
	}
	_ = eps[0].Close()
}

func TestBadDestinationRejected(t *testing.T) {
	eps := NewInProc(2)
	if err := eps[0].Send(Message{To: 7}); err == nil {
		t.Error("out-of-range destination accepted")
	}
	if err := eps[0].Send(Message{To: -1}); err == nil {
		t.Error("negative destination accepted")
	}
}

func TestTimestampAndKindRoundTrip(t *testing.T) {
	eps, err := NewTCPCluster(2)
	if err != nil {
		t.Fatal(err)
	}
	defer eps[0].Close()
	defer eps[1].Close()
	want := Message{To: 1, Tag: 42, Kind: 7, Time: 1.25, Payload: []byte{1, 2, 3}}
	if err := eps[0].Send(want); err != nil {
		t.Fatal(err)
	}
	got, err := eps[1].Recv()
	if err != nil {
		t.Fatal(err)
	}
	if got.Tag != 42 || got.Kind != 7 || got.Time != 1.25 || got.From != 0 {
		t.Errorf("round trip lost fields: %+v", got)
	}
}
