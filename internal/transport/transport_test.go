package transport

import (
	"bytes"

	"fmt"
	"sync"
	"testing"
	"time"

	"autodist/internal/wire"
)

func testFabric(t *testing.T, eps []Endpoint) {
	t.Helper()
	n := len(eps)

	// Ping-pong between 0 and every other node.
	var wg sync.WaitGroup
	for peer := 1; peer < n; peer++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			msg, err := eps[p].Recv()
			if err != nil {
				t.Errorf("node %d recv: %v", p, err)
				return
			}
			if msg.From != 0 || string(msg.Payload) != fmt.Sprintf("ping %d", p) {
				t.Errorf("node %d got %+v", p, msg)
			}
			err = eps[p].Send(Message{To: 0, Tag: msg.Tag, Payload: []byte("pong")})
			if err != nil {
				t.Errorf("node %d send: %v", p, err)
			}
		}(peer)
	}
	for peer := 1; peer < n; peer++ {
		if err := eps[0].Send(Message{To: peer, Tag: uint64(peer), Payload: []byte(fmt.Sprintf("ping %d", peer))}); err != nil {
			t.Fatalf("send to %d: %v", peer, err)
		}
	}
	got := map[uint64]bool{}
	for peer := 1; peer < n; peer++ {
		msg, err := eps[0].Recv()
		if err != nil {
			t.Fatal(err)
		}
		if string(msg.Payload) != "pong" {
			t.Errorf("unexpected payload %q", msg.Payload)
		}
		got[msg.Tag] = true
	}
	if len(got) != n-1 {
		t.Errorf("got %d distinct pongs, want %d", len(got), n-1)
	}
	wg.Wait()
	for _, ep := range eps {
		_ = ep.Close()
	}
}

func TestInProcFabric(t *testing.T) {
	testFabric(t, NewInProc(4))
}

func TestTCPFabric(t *testing.T) {
	eps, err := NewTCPCluster(3)
	if err != nil {
		t.Fatal(err)
	}
	testFabric(t, eps)
}

func TestInProcOrderPreservedPerPair(t *testing.T) {
	eps := NewInProc(2)
	const n = 100
	for i := 0; i < n; i++ {
		if err := eps[0].Send(Message{To: 1, Tag: uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		msg, err := eps[1].Recv()
		if err != nil {
			t.Fatal(err)
		}
		if msg.Tag != uint64(i) {
			t.Fatalf("message %d arrived out of order (tag %d)", i, msg.Tag)
		}
	}
}

func TestRecvAfterCloseReturnsError(t *testing.T) {
	eps := NewInProc(2)
	done := make(chan error, 1)
	go func() {
		_, err := eps[1].Recv()
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	_ = eps[1].Close()
	select {
	case err := <-done:
		if err != ErrClosed {
			t.Errorf("err = %v, want ErrClosed", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Recv did not unblock on Close")
	}
}

func TestTCPRecvAfterClose(t *testing.T) {
	eps, err := NewTCPCluster(2)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := eps[1].Recv()
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	_ = eps[1].Close()
	select {
	case err := <-done:
		if err != ErrClosed {
			t.Errorf("err = %v, want ErrClosed", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Recv did not unblock on Close")
	}
	_ = eps[0].Close()
}

func TestConcurrentSendAndCloseNoPanic(t *testing.T) {
	// Regression: a peer may Close between Send's closed check and the
	// channel send; this must surface as an error, never a panic —
	// including for senders already blocked on a full inbox.
	for iter := 0; iter < 50; iter++ {
		eps := NewInProc(2)
		var wg sync.WaitGroup
		start := make(chan struct{})
		for s := 0; s < 8; s++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				<-start
				for i := 0; i < 300; i++ {
					if err := eps[0].Send(Message{To: 1, Tag: uint64(i)}); err != nil {
						return // peer closed — expected
					}
				}
			}()
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			_ = eps[1].Close()
		}()
		close(start)
		wg.Wait()
		_ = eps[0].Close()
	}
}

func TestSendBlockedOnFullInboxUnblocksOnClose(t *testing.T) {
	eps := NewInProc(2)
	// Fill the peer inbox to capacity without draining it.
	for i := 0; ; i++ {
		blocked := make(chan error, 1)
		go func() {
			blocked <- eps[0].Send(Message{To: 1})
		}()
		select {
		case err := <-blocked:
			if err != nil {
				t.Fatalf("send %d failed early: %v", i, err)
			}
		case <-time.After(20 * time.Millisecond):
			// Sender is now blocked on the full inbox; Close must
			// unblock it with an error rather than a panic.
			_ = eps[1].Close()
			select {
			case err := <-blocked:
				if err == nil {
					t.Error("blocked send reported success after Close")
				}
			case <-time.After(2 * time.Second):
				t.Fatal("blocked send did not unblock on Close")
			}
			return
		}
		if i > 5000 {
			t.Fatal("inbox never filled")
		}
	}
}

func TestBadDestinationRejected(t *testing.T) {
	eps := NewInProc(2)
	if err := eps[0].Send(Message{To: 7}); err == nil {
		t.Error("out-of-range destination accepted")
	}
	if err := eps[0].Send(Message{To: -1}); err == nil {
		t.Error("negative destination accepted")
	}
}

func TestTimestampAndKindRoundTrip(t *testing.T) {
	eps, err := NewTCPCluster(2)
	if err != nil {
		t.Fatal(err)
	}
	defer eps[0].Close()
	defer eps[1].Close()
	want := Message{To: 1, Tag: 42, TID: 1 << 40, Kind: 7, Time: 1.25, Payload: []byte{1, 2, 3}}
	if err := eps[0].Send(want); err != nil {
		t.Fatal(err)
	}
	got, err := eps[1].Recv()
	if err != nil {
		t.Fatal(err)
	}
	if got.Tag != 42 || got.TID != 1<<40 || got.Kind != 7 || got.Time != 1.25 || got.From != 0 {
		t.Errorf("round trip lost fields: %+v", got)
	}
}

// TestTCPConcurrentSendersDistinctPeers exercises the dial-outside-lock
// path: many goroutines send first messages to different peers at
// once (racing dials to the same peer included); every frame must
// arrive intact exactly once.
func TestTCPConcurrentSendersDistinctPeers(t *testing.T) {
	const n, per = 4, 16
	eps, err := NewTCPCluster(n)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		for _, ep := range eps {
			_ = ep.Close()
		}
	}()
	var wg sync.WaitGroup
	for peer := 1; peer < n; peer++ {
		for i := 0; i < per; i++ {
			wg.Add(1)
			go func(peer, i int) {
				defer wg.Done()
				msg := Message{To: peer, Tag: uint64(i), TID: uint64(peer), Payload: []byte(fmt.Sprintf("m%d-%d", peer, i))}
				if err := eps[0].Send(msg); err != nil {
					t.Errorf("send to %d: %v", peer, err)
				}
			}(peer, i)
		}
	}
	wg.Wait()
	for peer := 1; peer < n; peer++ {
		seen := map[uint64]bool{}
		for i := 0; i < per; i++ {
			msg, err := eps[peer].Recv()
			if err != nil {
				t.Fatal(err)
			}
			if msg.TID != uint64(peer) || string(msg.Payload) != fmt.Sprintf("m%d-%d", peer, msg.Tag) {
				t.Fatalf("node %d got corrupted frame %+v", peer, msg)
			}
			if seen[msg.Tag] {
				t.Fatalf("node %d got duplicate tag %d", peer, msg.Tag)
			}
			seen[msg.Tag] = true
		}
	}
}

// TestFramingAgreesWithWireCodec cross-checks that a payload encoded
// with the runtime's wire codec survives both fabrics byte-for-byte:
// the runtime body codec and the TCP frame envelope share one format
// family and must not corrupt each other.
func TestFramingAgreesWithWireCodec(t *testing.T) {
	req := wire.DepRequest{
		ID: 42, Kind: 1, Member: "bounce:(I)I",
		Args: []wire.Value{
			{Kind: wire.KInt, Int: -7},
			{Kind: wire.KArr, Elem: "I", Arr: []wire.Value{{Kind: wire.KInt, Int: 1}, {Kind: wire.KNull}}},
			{Kind: wire.KObj, Node: 1, ID: 9, Class: "Account"},
		},
	}
	payload := req.Encode()

	fabrics := map[string][]Endpoint{}
	fabrics["inproc"] = NewInProc(2)
	tcp, err := NewTCPCluster(2)
	if err != nil {
		t.Fatal(err)
	}
	fabrics["tcp"] = tcp

	for name, eps := range fabrics {
		if err := eps[0].Send(Message{To: 1, Tag: 5, Kind: 2, Payload: payload}); err != nil {
			t.Fatalf("%s send: %v", name, err)
		}
		msg, err := eps[1].Recv()
		if err != nil {
			t.Fatalf("%s recv: %v", name, err)
		}
		if !bytes.Equal(msg.Payload, payload) {
			t.Fatalf("%s: payload corrupted in transit", name)
		}
		got, err := wire.DecodeDepRequest(msg.Payload)
		if err != nil {
			t.Fatalf("%s decode: %v", name, err)
		}
		if got.ID != req.ID || got.Member != req.Member || len(got.Args) != 3 || got.Args[2].Class != "Account" {
			t.Fatalf("%s: decoded %+v != sent %+v", name, got, req)
		}
		for _, ep := range eps {
			_ = ep.Close()
		}
	}
}

func TestInProcReportsCausalTCPDoesNot(t *testing.T) {
	inproc := NewInProc(2)
	if !Causal(inproc[0]) {
		t.Error("in-process fabric must report causal delivery")
	}
	tcp, err := NewTCPCluster(2)
	if err != nil {
		t.Fatal(err)
	}
	defer tcp[0].Close()
	defer tcp[1].Close()
	if Causal(tcp[0]) {
		t.Error("TCP fabric must not report causal delivery")
	}
	for _, ep := range inproc {
		_ = ep.Close()
	}
}
