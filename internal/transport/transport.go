// Package transport provides the message-passing fabric that plays
// MPI's role in the runtime (paper §5). It deliberately exposes a
// message-exchange interface (send/recv of tagged frames) rather than
// request/response RPC, because the paper argues message exchange
// exposes more communication-optimisation opportunities than RPC/RMI.
//
// Two interchangeable fabrics are provided: an in-process fabric built
// on channels (hermetic tests, deterministic simulation) and a TCP
// fabric with compact binary frames (real distributed execution); both
// use the internal/wire codec's frame envelope model.
package transport

import (
	"errors"
	"fmt"
	"strings"
	"sync"
)

// Message is one tagged frame. Tag correlates requests with responses;
// TID names the logical thread the frame belongs to (0 is the system
// thread), so replies, asynchronous batches and deferred errors
// correlate per thread rather than per node; Time carries the sender's
// simulated clock for the virtual-time model (paper §7.2's
// heterogeneous-node experiments).
type Message struct {
	From, To int
	Tag      uint64
	TID      uint64
	Kind     uint8
	// Seq and Ack are the reliability layer's sequence number and
	// cumulative acknowledgement for the (sender, receiver) direction;
	// Dedup is the runtime's idempotency id for re-driven requests. All
	// three are zero on fabrics without the reliability wrapper, and
	// frames with all three zero keep the version-2 wire layout.
	Seq   uint64
	Ack   uint64
	Dedup uint64
	// View is the sender's membership view id, stamped on coordination
	// traffic by elastic clusters. Zero everywhere else; frames with a
	// zero view keep the version-3 (or smaller) wire layout.
	View    uint64
	Time    float64
	Payload []byte
}

// Endpoint is one node's port into the fabric — the MPI service of
// Figure 10.
type Endpoint interface {
	// Rank is this node's id in [0, Size).
	Rank() int
	// Size is the number of nodes.
	Size() int
	// Send delivers a message to node msg.To. It is safe for
	// concurrent use.
	Send(msg Message) error
	// Recv blocks until a message arrives (any sender). It returns
	// an error after Close.
	Recv() (Message, error)
	// Close tears the endpoint down, unblocking Recv.
	Close() error
}

// ErrClosed is returned by Recv after Close.
var ErrClosed = fmt.Errorf("transport: endpoint closed")

// ErrPeerDown is returned (wrapped, with peer and frame-kind context)
// by a reliability-layer Send once the failure detector has declared
// the destination dead. Use IsPeerDown to test for it: runtime errors
// cross the wire as strings, so the sentinel alone is not enough.
var ErrPeerDown = errors.New("transport: peer down")

// IsPeerDown reports whether err (or its text, for errors that crossed
// the wire as strings inside response payloads) indicates a dead peer.
func IsPeerDown(err error) bool {
	if err == nil {
		return false
	}
	return errors.Is(err, ErrPeerDown) || strings.Contains(err.Error(), "peer down")
}

// FaultStats is the reliability layer's counter snapshot: frames
// retransmitted after an ack timeout, frames recovered on the receive
// side (duplicates suppressed plus out-of-order frames healed by
// buffering), and peers declared dead.
type FaultStats struct {
	Retransmits int64
	Recovered   int64
	PeersDown   int64
}

// Faults returns the endpoint's fault counters if the fabric tracks
// them (the reliability wrapper does; bare fabrics do not).
func Faults(ep Endpoint) (FaultStats, bool) {
	f, ok := ep.(interface{ FaultCounters() FaultStats })
	if !ok {
		return FaultStats{}, false
	}
	return f.FaultCounters(), true
}

// CopiesPayload reports whether the fabric's Send consumes
// msg.Payload before returning — encoding it into a connection batch
// or onto the socket — so the caller may recycle the payload buffer
// (wire.PutBuf) as soon as Send returns. The TCP fabric copies; the
// in-process fabric hands the payload slice itself to the receiver, so
// there the buffer is recycled by the consumer after handling instead.
func CopiesPayload(ep Endpoint) bool {
	c, ok := ep.(interface{ SendCopiesPayload() bool })
	return ok && c.SendCopiesPayload()
}

// Flush blocks until every frame the endpoint accepted so far has been
// handed to the kernel — the flush barrier runtime shutdown uses so
// control frames are never stranded in a write batch. Fabrics without
// buffered writers (in-process channels) flush trivially.
func Flush(ep Endpoint) error {
	if f, ok := ep.(interface{ Flush() error }); ok {
		return f.Flush()
	}
	return nil
}

// Grow adds one node to a growable fabric: it returns a fresh endpoint
// with the next rank, after which every existing endpoint's Size()
// reflects the larger cluster. The in-process and TCP fabrics grow;
// fabrics without the capability return an error. Wrappers (chaos,
// reliability) are grown by wrapping the new base endpoint — their
// existing instances pick the larger size up from their inner endpoint
// lazily.
func Grow(ep Endpoint) (Endpoint, error) {
	g, ok := ep.(interface{ GrowEndpoint() (Endpoint, error) })
	if !ok {
		return nil, fmt.Errorf("transport: fabric cannot grow")
	}
	return g.GrowEndpoint()
}

// RetirePeer removes a departed or dead rank from an endpoint's
// reliability state immediately: queued frames stop retransmitting,
// heartbeats stop, and subsequent sends to the rank fail fast — with
// no PEERDOWN verdict and no peers-down count, because the caller
// already knows (a recovery round rehomed the rank's objects, or a
// graceful leave drained it). Fabrics without reliability state ignore
// it.
func RetirePeer(ep Endpoint, rank int) {
	if r, ok := ep.(interface{ RetireRank(rank int) }); ok {
		r.RetireRank(rank)
	}
}

// Causal reports whether the fabric guarantees causally ordered
// delivery: if send A completes before send B starts anywhere along a
// happens-before chain, A is received before B at a shared receiver.
// The in-process fabric has this property (channel sends are globally
// ordered per inbox); independent TCP connections do not. The runtime
// uses it to decide whether fire-and-forget asynchronous batches need
// completion acknowledgements.
func Causal(ep Endpoint) bool {
	c, ok := ep.(interface{ CausalDelivery() bool })
	return ok && c.CausalDelivery()
}

// inprocFabric is the shared state of an in-process fabric: the
// endpoint roster, guarded so the cluster can grow while senders look
// peers up concurrently.
type inprocFabric struct {
	mu  sync.RWMutex
	eps []*inprocEndpoint
}

func (f *inprocFabric) size() int {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return len(f.eps)
}

func (f *inprocFabric) peer(i int) *inprocEndpoint {
	f.mu.RLock()
	defer f.mu.RUnlock()
	if i < 0 || i >= len(f.eps) {
		return nil
	}
	return f.eps[i]
}

func (f *inprocFabric) grow() *inprocEndpoint {
	f.mu.Lock()
	defer f.mu.Unlock()
	e := &inprocEndpoint{rank: len(f.eps), fab: f, inbox: make(chan Message, 1024), done: make(chan struct{})}
	f.eps = append(f.eps, e)
	return e
}

// inprocEndpoint is one port of an in-process fabric.
type inprocEndpoint struct {
	rank  int
	fab   *inprocFabric
	inbox chan Message
	done  chan struct{}

	mu     sync.Mutex
	closed bool
}

// NewInProc builds an n-node in-process fabric and returns its
// endpoints. Message order is preserved per sender→receiver pair.
func NewInProc(n int) []Endpoint {
	fab := &inprocFabric{}
	out := make([]Endpoint, n)
	for i := range out {
		out[i] = fab.grow()
	}
	return out
}

func (e *inprocEndpoint) Rank() int { return e.rank }
func (e *inprocEndpoint) Size() int { return e.fab.size() }

// GrowEndpoint adds one node to the fabric and returns its endpoint.
func (e *inprocEndpoint) GrowEndpoint() (Endpoint, error) {
	return e.fab.grow(), nil
}

// CausalDelivery marks the channel fabric as causally ordered.
func (e *inprocEndpoint) CausalDelivery() bool { return true }

func (e *inprocEndpoint) Send(msg Message) error {
	peer := e.fab.peer(msg.To)
	if peer == nil {
		return fmt.Errorf("transport: bad destination %d", msg.To)
	}
	msg.From = e.rank
	// The inbox channel is never closed (closing with concurrent
	// senders is a race); Close signals through the done channel
	// instead, which also unblocks senders stuck on a full inbox.
	select {
	case <-peer.done:
		return fmt.Errorf("transport: peer %d closed", msg.To)
	default:
	}
	select {
	case peer.inbox <- msg:
		return nil
	case <-peer.done:
		return fmt.Errorf("transport: peer %d closed", msg.To)
	}
}

func (e *inprocEndpoint) Recv() (Message, error) {
	// Drain buffered messages before honouring Close, preserving the
	// closed-channel semantics the fabric previously had.
	select {
	case msg := <-e.inbox:
		return msg, nil
	default:
	}
	select {
	case msg := <-e.inbox:
		return msg, nil
	case <-e.done:
		return Message{}, ErrClosed
	}
}

func (e *inprocEndpoint) Close() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if !e.closed {
		e.closed = true
		close(e.done)
	}
	return nil
}
