package transport

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"autodist/internal/wire"
)

// ReliableOptions tunes the reliability wrapper. The zero value picks
// defaults suited to LAN tests: 25ms heartbeats, a peer is declared
// dead after 4 missed intervals, unacknowledged frames retransmit
// after 50ms with exponential backoff.
type ReliableOptions struct {
	// HeartbeatInterval is the liveness-probe period (0 = 25ms).
	HeartbeatInterval time.Duration
	// HeartbeatMisses is how many silent intervals declare a peer dead
	// (0 = 4).
	HeartbeatMisses int
	// RetransmitTimeout is the base ack timeout before a frame is
	// resent (0 = 50ms); attempt n waits timeout<<(n-1), capped.
	RetransmitTimeout time.Duration
}

func (o *ReliableOptions) interval() time.Duration {
	if o.HeartbeatInterval <= 0 {
		return 25 * time.Millisecond
	}
	return o.HeartbeatInterval
}

func (o *ReliableOptions) misses() int {
	if o.HeartbeatMisses <= 0 {
		return 4
	}
	return o.HeartbeatMisses
}

func (o *ReliableOptions) retransmit() time.Duration {
	if o.RetransmitTimeout <= 0 {
		return 50 * time.Millisecond
	}
	return o.RetransmitTimeout
}

// Deadline is the failure-detection deadline the options imply: a peer
// silent this long is declared dead.
func (o *ReliableOptions) Deadline() time.Duration {
	return o.interval() * time.Duration(o.misses())
}

// relEntry is one unacknowledged outbound frame. The payload is a
// master copy owned by the ring; every (re)transmission over a
// non-copying inner fabric sends a fresh copy so the receiver can own
// what it gets.
type relEntry struct {
	msg      Message
	lastSent time.Time
	attempts int
}

// relPeer is the per-peer reliability state: outbound sequence numbers
// and the unacked ring, inbound cursor and reorder buffer, and the
// failure detector's clock.
type relPeer struct {
	// Outbound: seq of the next frame is nextSeq+1; unacked holds
	// frames in seq order awaiting a cumulative ack.
	nextSeq uint64
	unacked []relEntry
	// Inbound: recvNext is the next expected seq; reorder buffers
	// frames that arrived early.
	recvNext uint64
	reorder  map[uint64]Message
	// Failure detection.
	lastHeard time.Time
	active    bool
	down      bool
}

// relEndpoint layers per-peer FIFO exactly-once delivery, ack-driven
// retransmission and heartbeat failure detection over any inner
// fabric. Frames are sequenced per (sender, receiver) direction and
// carry cumulative acknowledgements; heartbeats keep quiet links alive
// and carry acks of their own. When a peer misses enough heartbeats it
// is declared dead: its ring is dropped, later Sends fail fast with
// ErrPeerDown, and a synthetic KindPeerDown message is delivered into
// the local receive stream so the runtime can start recovery.
//
// Send never propagates inner transmission errors: a frame that could
// not reach the socket stays in the ring and is retried with backoff,
// so a peer that was never reachable produces a PeerDown verdict
// within the heartbeat deadline instead of an error-per-send retry
// loop.
type relEndpoint struct {
	inner       Endpoint
	opts        ReliableOptions
	innerCopies bool

	inbox     chan Message
	done      chan struct{}
	closeOnce sync.Once
	wg        sync.WaitGroup

	mu    sync.Mutex
	peers []*relPeer

	retransmits atomic.Int64
	recovered   atomic.Int64
	peersDown   atomic.Int64
}

// NewReliable wraps ep with the reliability layer. The wrapper owns
// the inner endpoint: closing the wrapper closes ep.
func NewReliable(ep Endpoint, opts ReliableOptions) Endpoint {
	e := &relEndpoint{
		inner:       ep,
		opts:        opts,
		innerCopies: CopiesPayload(ep),
		inbox:       make(chan Message, 1024),
		done:        make(chan struct{}),
		peers:       make([]*relPeer, ep.Size()),
	}
	for i := range e.peers {
		e.peers[i] = &relPeer{recvNext: 1, reorder: map[uint64]Message{}}
	}
	e.wg.Add(2)
	go e.recvLoop()
	go e.tickLoop()
	return e
}

func (e *relEndpoint) Rank() int { return e.inner.Rank() }
func (e *relEndpoint) Size() int { return e.inner.Size() }

// peerLocked returns the state for rank, growing the table when the
// inner fabric has grown past it (an admitted joiner): new peers start
// with fresh sequence space, exactly like peers at construction.
// Callers hold e.mu and have bounds-checked rank against e.Size().
func (e *relEndpoint) peerLocked(rank int) *relPeer {
	for len(e.peers) <= rank {
		e.peers = append(e.peers, &relPeer{recvNext: 1, reorder: map[uint64]Message{}})
	}
	return e.peers[rank]
}

// RetireRank drops all reliability state for a departed or recovered-
// around rank immediately — see transport.RetirePeer. Unlike a
// heartbeat-deadline verdict it synthesises no PeerDown and counts no
// peers-down: the caller already acted on the departure, and what this
// buys is that frames queued to the rank stop retransmitting with
// backoff until the deadline.
func (e *relEndpoint) RetireRank(rank int) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if rank < 0 || rank >= e.Size() || rank == e.Rank() {
		return
	}
	p := e.peerLocked(rank)
	if p.down {
		return
	}
	p.down = true
	p.active = false
	p.unacked = nil
	p.reorder = map[uint64]Message{}
}

// SendCopiesPayload: Send copies the payload into the ring's master
// copy before returning, so callers recycle their buffer immediately.
func (e *relEndpoint) SendCopiesPayload() bool { return true }

// CausalDelivery: retransmission can reorder frames across peers (a
// delayed frame to B may be retried after a fresh frame to C that
// causally follows it), so the wrapper never claims causal delivery
// even over a causal inner fabric. The runtime responds by
// acknowledging all asynchronous batches — which also makes every
// effectful frame a tagged request the dedup journal can intercept.
func (e *relEndpoint) CausalDelivery() bool { return false }

// Flush delegates to the inner fabric's write barrier.
func (e *relEndpoint) Flush() error { return Flush(e.inner) }

// FaultCounters exposes the reliability counters (see Faults).
func (e *relEndpoint) FaultCounters() FaultStats {
	return FaultStats{
		Retransmits: e.retransmits.Load(),
		Recovered:   e.recovered.Load(),
		PeersDown:   e.peersDown.Load(),
	}
}

func (e *relEndpoint) Send(msg Message) error {
	if msg.To < 0 || msg.To >= e.Size() {
		return fmt.Errorf("transport: bad destination %d", msg.To)
	}
	msg.From = e.Rank()
	e.mu.Lock()
	p := e.peerLocked(msg.To)
	if p.down {
		e.mu.Unlock()
		return fmt.Errorf("transport: send to node %d (frame kind %d): %w", msg.To, msg.Kind, ErrPeerDown)
	}
	p.nextSeq++
	msg.Seq = p.nextSeq
	msg.Ack = p.recvNext - 1
	if len(msg.Payload) > 0 {
		msg.Payload = append([]byte(nil), msg.Payload...)
	}
	now := time.Now()
	p.unacked = append(p.unacked, relEntry{msg: msg, lastSent: now, attempts: 1})
	if !p.active {
		p.active = true
		p.lastHeard = now
	}
	e.mu.Unlock()
	// Transmission errors are absorbed: the frame is in the ring and
	// the retransmit scan owns its fate; a dead destination surfaces as
	// PeerDown at the heartbeat deadline, not as a send error.
	_ = e.transmit(msg)
	return nil
}

// transmit sends one copy of a ring frame over the inner fabric. Over
// a non-copying inner fabric the receiver keeps the slice it gets, so
// each transmission sends a fresh copy of the master payload.
func (e *relEndpoint) transmit(msg Message) error {
	if !e.innerCopies && len(msg.Payload) > 0 {
		msg.Payload = append(wire.GetBuf(), msg.Payload...)
	}
	return e.inner.Send(msg)
}

func (e *relEndpoint) Recv() (Message, error) {
	select {
	case msg := <-e.inbox:
		return msg, nil
	default:
	}
	select {
	case msg := <-e.inbox:
		return msg, nil
	case <-e.done:
		return Message{}, ErrClosed
	}
}

func (e *relEndpoint) Close() error {
	e.closeOnce.Do(func() {
		close(e.done)
		_ = e.inner.Close()
	})
	// Wait outside the Once: recvLoop re-enters the same Once on its
	// inner-Recv error path, so waiting for it inside would deadlock.
	e.wg.Wait()
	return nil
}

// deliverLocal hands a message to the local consumer, bounded by Close.
func (e *relEndpoint) deliverLocal(msg Message) bool {
	select {
	case e.inbox <- msg:
		return true
	case <-e.done:
		return false
	}
}

// recvLoop drains the inner fabric: acks retire ring entries,
// heartbeats refresh the failure detector, duplicates are suppressed,
// and out-of-order frames wait in the reorder buffer until the gap
// fills. Exactly the in-order prefix is delivered to the consumer.
func (e *relEndpoint) recvLoop() {
	defer e.wg.Done()
	for {
		msg, err := e.inner.Recv()
		if err != nil {
			// Inner endpoint died (closed under us, or the process is
			// being torn down): surface ErrClosed to our consumer.
			e.closeOnce.Do(func() {
				close(e.done)
				_ = e.inner.Close()
			})
			return
		}
		if msg.From < 0 || msg.From >= e.Size() {
			continue
		}
		var deliver []Message
		e.mu.Lock()
		p := e.peerLocked(msg.From)
		if p.down {
			// A declared-dead peer stays dead; drop zombie frames.
			e.mu.Unlock()
			wire.PutBuf(msg.Payload)
			continue
		}
		p.lastHeard = time.Now()
		p.active = true
		// Cumulative ack retires ring entries.
		if msg.Ack > 0 {
			i := 0
			for i < len(p.unacked) && p.unacked[i].msg.Seq <= msg.Ack {
				i++
			}
			if i > 0 {
				p.unacked = append(p.unacked[:0], p.unacked[i:]...)
			}
		}
		switch {
		case msg.Kind == wire.KindHeartbeat:
			// Liveness and ack only; never delivered.
		case msg.Seq == 0:
			// Unsequenced frame (a peer without the wrapper); pass
			// through unordered.
			deliver = append(deliver, msg)
		case msg.Seq < p.recvNext:
			// Duplicate of an already-delivered frame (retransmit that
			// crossed its ack): suppress.
			e.recovered.Add(1)
			wire.PutBuf(msg.Payload)
		case msg.Seq > p.recvNext:
			// Early frame: hold until the gap fills.
			if _, dup := p.reorder[msg.Seq]; dup {
				e.recovered.Add(1)
				wire.PutBuf(msg.Payload)
			} else {
				p.reorder[msg.Seq] = msg
			}
		default:
			deliver = append(deliver, msg)
			p.recvNext++
			for {
				next, ok := p.reorder[p.recvNext]
				if !ok {
					break
				}
				delete(p.reorder, p.recvNext)
				e.recovered.Add(1)
				deliver = append(deliver, next)
				p.recvNext++
			}
		}
		e.mu.Unlock()
		for _, m := range deliver {
			if !e.deliverLocal(m) {
				return
			}
		}
	}
}

// tickLoop is the heartbeat and retransmission clock: every interval
// it declares peers past the deadline dead (synthesising PeerDown),
// resends unacked frames past their backoff, and heartbeats every
// active live peer so quiet links stay provably alive.
func (e *relEndpoint) tickLoop() {
	defer e.wg.Done()
	ticker := time.NewTicker(e.opts.interval())
	defer ticker.Stop()
	deadline := e.opts.Deadline()
	rto := e.opts.retransmit()
	for {
		select {
		case <-e.done:
			return
		case <-ticker.C:
		}
		now := time.Now()
		var resend []Message
		var downs []int
		var beats []Message
		e.mu.Lock()
		for rank, p := range e.peers {
			if rank == e.Rank() || !p.active || p.down {
				continue
			}
			if now.Sub(p.lastHeard) > deadline {
				p.down = true
				p.unacked = nil
				p.reorder = map[uint64]Message{}
				downs = append(downs, rank)
				continue
			}
			for i := range p.unacked {
				ent := &p.unacked[i]
				backoff := rto << uint(min(ent.attempts-1, 5))
				if now.Sub(ent.lastSent) >= backoff {
					ent.lastSent = now
					ent.attempts++
					m := ent.msg
					m.Ack = p.recvNext - 1
					resend = append(resend, m)
				}
			}
			beats = append(beats, Message{
				From: e.Rank(), To: rank, Kind: wire.KindHeartbeat, Ack: p.recvNext - 1,
			})
		}
		e.mu.Unlock()
		for _, m := range resend {
			e.retransmits.Add(1)
			_ = e.transmit(m)
		}
		for _, m := range beats {
			// A heartbeat with nothing yet received has Seq=Ack=Dedup=0
			// and rides the v2 envelope; its kind still marks it.
			_ = e.inner.Send(m)
		}
		for _, rank := range downs {
			e.peersDown.Add(1)
			if !e.deliverLocal(Message{From: rank, To: e.Rank(), Kind: wire.KindPeerDown}) {
				return
			}
		}
	}
}
