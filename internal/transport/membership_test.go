package transport

import (
	"testing"
	"time"

	"autodist/internal/wire"
)

// TestInProcGrow: growing the channel fabric yields a next-rank
// endpoint, every existing endpoint sees the larger size, and frames
// flow both ways with the newcomer.
func TestInProcGrow(t *testing.T) {
	eps := NewInProc(2)
	grown, err := Grow(eps[0])
	if err != nil {
		t.Fatal(err)
	}
	if grown.Rank() != 2 {
		t.Fatalf("grown rank %d, want 2", grown.Rank())
	}
	for i, ep := range append(eps, grown) {
		if ep.Size() != 3 {
			t.Fatalf("endpoint %d size %d after growth, want 3", i, ep.Size())
		}
	}
	if err := eps[0].Send(Message{To: 2, Tag: 7, Payload: []byte("hi")}); err != nil {
		t.Fatal(err)
	}
	msg, err := grown.Recv()
	if err != nil || msg.From != 0 || msg.Tag != 7 {
		t.Fatalf("joiner recv %+v (%v)", msg, err)
	}
	if err := grown.Send(Message{To: 1, Tag: 8}); err != nil {
		t.Fatal(err)
	}
	msg, err = eps[1].Recv()
	if err != nil || msg.From != 2 || msg.Tag != 8 {
		t.Fatalf("old member recv %+v (%v)", msg, err)
	}
	for _, ep := range append(eps, grown) {
		_ = ep.Close()
	}
}

// TestTCPGrow: the TCP fabric grows through the shared address book —
// existing endpoints route to the newcomer's fresh listener and the
// newcomer dials back, with no reconfiguration of the old nodes.
func TestTCPGrow(t *testing.T) {
	eps, err := NewTCPCluster(2)
	if err != nil {
		t.Fatal(err)
	}
	grown, err := Grow(eps[1])
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		for _, ep := range append(eps, grown) {
			_ = ep.Close()
		}
	}()
	if grown.Rank() != 2 || eps[0].Size() != 3 || grown.Size() != 3 {
		t.Fatalf("rank %d, sizes %d/%d, want 2 and 3/3", grown.Rank(), eps[0].Size(), grown.Size())
	}
	if err := eps[0].Send(Message{To: 2, Tag: 9, Payload: []byte("x")}); err != nil {
		t.Fatal(err)
	}
	msg, err := grown.Recv()
	if err != nil || msg.From != 0 || msg.Tag != 9 {
		t.Fatalf("joiner recv %+v (%v)", msg, err)
	}
	wire.PutBuf(msg.Payload)
	if err := grown.Send(Message{To: 0, Tag: 10, View: 5}); err != nil {
		t.Fatal(err)
	}
	msg, err = eps[0].Recv()
	if err != nil || msg.From != 2 || msg.Tag != 10 || msg.View != 5 {
		t.Fatalf("old member recv %+v (%v), want view 5 from 2", msg, err)
	}
}

// TestReliableGrow: the reliability wrapper picks a grown fabric up
// lazily — peers past the original size get fresh sequence state on
// first contact, in both directions, with ordered delivery.
func TestReliableGrow(t *testing.T) {
	base := NewInProc(2)
	opts := ReliableOptions{HeartbeatInterval: 20 * time.Millisecond, HeartbeatMisses: 500}
	eps := make([]Endpoint, 2)
	for i, ep := range base {
		eps[i] = NewReliable(ep, opts)
	}
	grownBase, err := Grow(base[0])
	if err != nil {
		t.Fatal(err)
	}
	grown := NewReliable(grownBase, opts)
	defer func() {
		for _, ep := range append(eps, grown) {
			_ = ep.Close()
		}
	}()
	if eps[0].Size() != 3 || grown.Size() != 3 {
		t.Fatalf("sizes %d/%d after growth, want 3/3", eps[0].Size(), grown.Size())
	}
	for i := 0; i < 5; i++ {
		if err := eps[1].Send(Message{To: 2, Tag: uint64(100 + i)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 5; i++ {
		msg, err := grown.Recv()
		if err != nil || msg.From != 1 || msg.Tag != uint64(100+i) {
			t.Fatalf("joiner recv %d: %+v (%v)", i, msg, err)
		}
	}
	if err := grown.Send(Message{To: 0, Tag: 55}); err != nil {
		t.Fatal(err)
	}
	msg, err := eps[0].Recv()
	if err != nil || msg.From != 2 || msg.Tag != 55 || msg.Seq != 1 {
		t.Fatalf("old member recv %+v (%v), want seq 1 from 2", msg, err)
	}
}

// TestRetirePeerStopsRetransmits is the satellite fix's contract:
// frames queued to a rank that has been removed (killed and recovered
// around, or gracefully departed) stop retransmitting the moment the
// peer is retired — not at the heartbeat deadline — later sends fail
// fast, and no PEERDOWN verdict is synthesised (the caller already
// knows the rank is gone).
func TestRetirePeerStopsRetransmits(t *testing.T) {
	base := NewInProc(2)
	chaos, wrapped := NewChaos(base, ChaosRules{})
	// A far-away deadline so the failure detector never beats the
	// explicit retire, and a short rto so retransmits accumulate fast.
	opts := ReliableOptions{
		HeartbeatInterval: 10 * time.Millisecond,
		HeartbeatMisses:   100_000,
		RetransmitTimeout: 5 * time.Millisecond,
	}
	ep0 := NewReliable(wrapped[0], opts)
	defer ep0.Close()
	chaos.Kill(1) // frames to rank 1 vanish; it never acks

	if err := ep0.Send(Message{To: 1, Tag: 1, Payload: []byte("doomed")}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for mustFaults(t, ep0).Retransmits < 3 {
		if time.Now().After(deadline) {
			t.Fatal("retransmissions never started")
		}
		time.Sleep(5 * time.Millisecond)
	}

	RetirePeer(ep0, 1)
	after := mustFaults(t, ep0).Retransmits
	time.Sleep(100 * time.Millisecond) // many rto periods
	final := mustFaults(t, ep0)
	if final.Retransmits != after {
		t.Fatalf("ring still retransmitting after retire: %d -> %d", after, final.Retransmits)
	}
	if final.PeersDown != 0 {
		t.Fatalf("retire counted %d peers down; the failure detector owns that counter", final.PeersDown)
	}
	if err := ep0.Send(Message{To: 1, Tag: 2}); !IsPeerDown(err) {
		t.Fatalf("send to retired rank: %v, want peer-down", err)
	}
	// No synthetic PEERDOWN may appear in the receive stream.
	recvDone := make(chan Message, 1)
	go func() {
		if m, err := ep0.Recv(); err == nil {
			recvDone <- m
		}
	}()
	select {
	case m := <-recvDone:
		t.Fatalf("unexpected message after retire: kind %d from %d", m.Kind, m.From)
	case <-time.After(150 * time.Millisecond):
	}
}

func mustFaults(t *testing.T, ep Endpoint) FaultStats {
	t.Helper()
	f, ok := Faults(ep)
	if !ok {
		t.Fatal("endpoint has no fault counters")
	}
	return f
}
