package transport

import (
	"runtime/debug"
	"testing"
	"time"

	"autodist/internal/wire"
)

// tcpPair builds a connected two-endpoint TCP fabric, with a drain
// goroutine on the receiving side recycling payloads (the runtime's
// contract for copying fabrics).
func tcpPair(t testing.TB, opts TCPOptions) (send, recv Endpoint, stop func()) {
	t.Helper()
	eps, err := NewTCPClusterOpts(2, opts)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			m, err := eps[1].Recv()
			if err != nil {
				return
			}
			wire.PutBuf(m.Payload)
		}
	}()
	return eps[0], eps[1], func() {
		for _, ep := range eps {
			_ = ep.Close()
		}
		<-done
	}
}

// BenchmarkTCPSend measures the steady-state send hot path over a live
// TCP connection. The acceptance bar is 0 allocs/op: encode into a
// pooled buffer, append into the connection batch, recycle — nothing
// per-message reaches the heap.
func BenchmarkTCPSend(b *testing.B) {
	send, _, stop := tcpPair(b, DefaultTCPOptions())
	defer stop()
	payload := make([]byte, 128)
	msg := Message{To: 1, Kind: 7, Tag: 42, TID: 3, Payload: payload}
	// Warm the connection and pools before measuring.
	for i := 0; i < 1000; i++ {
		if err := send.Send(msg); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := send.Send(msg); err != nil {
			b.Fatal(err)
		}
	}
}

// TestTCPSendZeroAlloc is the benchmark's guard in plain-test form so
// `go test` (not just -bench) enforces the zero-allocation criterion.
// GC is disabled during the probe so the pools are not flushed
// mid-measurement.
func TestTCPSendZeroAlloc(t *testing.T) {
	send, _, stop := tcpPair(t, DefaultTCPOptions())
	defer stop()
	payload := make([]byte, 128)
	msg := Message{To: 1, Kind: 7, Tag: 42, TID: 3, Payload: payload}
	fn := func() {
		if err := send.Send(msg); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 2000; i++ {
		fn()
	}
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	if allocs := testing.AllocsPerRun(5000, fn); allocs != 0 {
		t.Errorf("TCP send path allocates %.1f times per op, want 0", allocs)
	}
}

// TestTCPCloseWithFullInbox is the regression test for the read-loop
// shutdown deadlock: with the receiving endpoint's inbox full and no
// consumer, the read loop is blocked delivering — Close must still
// return promptly instead of waiting on a lock the read loop holds
// (the old closeMu design deadlocked exactly there).
func TestTCPCloseWithFullInbox(t *testing.T) {
	eps, err := NewTCPCluster(2)
	if err != nil {
		t.Fatal(err)
	}
	defer eps[0].Close()
	// Overfill node 1's inbox (capacity 1024) and give the read loop
	// time to wedge on the blocking inbox send.
	for i := 0; i < 1500; i++ {
		if err := eps[0].Send(Message{To: 1, Tag: uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	time.Sleep(100 * time.Millisecond)
	closed := make(chan error, 1)
	go func() { closed <- eps[1].Close() }()
	select {
	case <-closed:
	case <-time.After(5 * time.Second):
		t.Fatal("Close deadlocked with a full inbox")
	}
}

// TestTCPCompressedFabric exercises the negotiated-compression mode
// end to end: both endpoints opt in, the dialler writes the segment
// preamble, and messages of every size class round-trip intact.
func TestTCPCompressedFabric(t *testing.T) {
	opts := DefaultTCPOptions()
	opts.Compress = true
	opts.CompressMin = 1 // compress even tiny batches
	eps, err := NewTCPClusterOpts(2, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		for _, ep := range eps {
			_ = ep.Close()
		}
	}()
	payloads := [][]byte{
		nil,
		[]byte("x"),
		bytes1k(),
		make([]byte, 64<<10), // highly compressible
	}
	for i, p := range payloads {
		if err := eps[0].Send(Message{To: 1, Tag: uint64(i), Kind: 5, Payload: p}); err != nil {
			t.Fatal(err)
		}
	}
	for i, p := range payloads {
		m, err := eps[1].Recv()
		if err != nil {
			t.Fatal(err)
		}
		if m.Tag != uint64(i) || len(m.Payload) != len(p) {
			t.Fatalf("message %d: got tag %d len %d, want tag %d len %d",
				i, m.Tag, len(m.Payload), i, len(p))
		}
		for j := range m.Payload {
			if m.Payload[j] != p[j] {
				t.Fatalf("message %d: payload corrupted at byte %d", i, j)
			}
		}
		wire.PutBuf(m.Payload)
	}
}

func bytes1k() []byte {
	b := make([]byte, 1024)
	for i := range b {
		b[i] = byte(i * 31)
	}
	return b
}

// TestTCPUncoalescedFabric runs the full fabric exchange with the
// write combiner off — the legacy one-Write-per-frame path must stay
// fully functional (it is the A/B baseline).
func TestTCPUncoalescedFabric(t *testing.T) {
	eps, err := NewTCPClusterOpts(3, TCPOptions{})
	if err != nil {
		t.Fatal(err)
	}
	testFabric(t, eps)
}

// TestTCPFlushBarrier checks that Flush returns only after previously
// enqueued frames reached the socket: a receiver that drains after
// Flush must observe every frame without the sender's help.
func TestTCPFlushBarrier(t *testing.T) {
	eps, err := NewTCPCluster(2)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		for _, ep := range eps {
			_ = ep.Close()
		}
	}()
	const n = 200
	for i := 0; i < n; i++ {
		if err := eps[0].Send(Message{To: 1, Tag: uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := Flush(eps[0]); err != nil {
		t.Fatalf("flush: %v", err)
	}
	for i := 0; i < n; i++ {
		m, err := eps[1].Recv()
		if err != nil {
			t.Fatalf("recv %d after flush: %v", i, err)
		}
		if m.Tag != uint64(i) {
			t.Fatalf("frame %d arrived out of order (tag %d)", i, m.Tag)
		}
		wire.PutBuf(m.Payload)
	}
}
