package transport

import (
	"fmt"
	"math/rand"
	"sync"
)

// ChaosRules is a seeded fault-injection policy. Each (sender,
// receiver) link gets its own deterministic random stream derived from
// Seed, so a given rule set replays the same fault pattern run after
// run regardless of goroutine scheduling on other links.
type ChaosRules struct {
	// Seed derives every link's random stream. The same seed and rules
	// reproduce the same per-link fault sequence.
	Seed int64
	// Drop is the probability a frame is silently discarded.
	Drop float64
	// Dup is the probability a frame is delivered twice.
	Dup float64
	// Reorder is the probability a frame is held back and sent after
	// the link's next frame (a pairwise swap; a held frame with no
	// successor looks like a drop and is healed by retransmission).
	Reorder float64
}

// Zero reports whether the rules inject no faults at all.
func (r ChaosRules) Zero() bool { return r.Drop == 0 && r.Dup == 0 && r.Reorder == 0 }

// Validate rejects out-of-range probabilities.
func (r ChaosRules) Validate() error {
	for _, p := range []struct {
		name string
		v    float64
	}{{"drop", r.Drop}, {"dup", r.Dup}, {"reorder", r.Reorder}} {
		if p.v < 0 || p.v >= 1 {
			return fmt.Errorf("chaos: %s probability %v outside [0,1)", p.name, p.v)
		}
	}
	return nil
}

// Chaos is the fault controller for a wrapped cluster: it owns the
// kill switch. Killing a rank closes that rank's endpoint (its Recv
// unblocks with ErrClosed, exactly like a process crash) and
// black-holes every frame to or from it, so the reliability layer
// above observes pure silence and declares it dead at the heartbeat
// deadline.
type Chaos struct {
	mu     sync.Mutex
	killed map[int]bool
	eps    []*chaosEndpoint
}

// Kill simulates the crash of rank: frames to and from it vanish and
// its endpoint closes. Idempotent.
func (c *Chaos) Kill(rank int) {
	c.mu.Lock()
	if c.killed[rank] {
		c.mu.Unlock()
		return
	}
	c.killed[rank] = true
	var ep *chaosEndpoint
	if rank >= 0 && rank < len(c.eps) {
		ep = c.eps[rank]
	}
	c.mu.Unlock()
	if ep != nil {
		_ = ep.inner.Close()
	}
}

// Killed reports whether rank has been killed.
func (c *Chaos) Killed(rank int) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.killed[rank]
}

// Extend wraps a freshly grown endpoint (an admitted joiner) with the
// controller's rules and registers it with the kill switch. The new
// rank's links draw from the same seed schedule they would have had at
// construction, so a scale-out run replays deterministically.
func (c *Chaos) Extend(ep Endpoint, rules ChaosRules) Endpoint {
	ce := &chaosEndpoint{inner: ep, ctl: c, rules: rules}
	c.mu.Lock()
	for len(c.eps) < ep.Rank() {
		c.eps = append(c.eps, nil)
	}
	c.eps = append(c.eps, ce)
	c.mu.Unlock()
	return ce
}

// chaosLink is the per-destination fault state: a seeded random stream
// and at most one held (reordered) frame.
type chaosLink struct {
	rng  *rand.Rand
	held *Message
}

// chaosEndpoint wraps one rank's endpoint with the fault rules. It
// sits below the reliability layer: injected faults are exactly what
// that layer must heal.
type chaosEndpoint struct {
	inner Endpoint
	ctl   *Chaos
	rules ChaosRules

	mu    sync.Mutex
	links []*chaosLink
}

// NewChaos wraps every endpoint of a cluster with the fault rules and
// returns the shared controller alongside the wrapped endpoints.
func NewChaos(eps []Endpoint, rules ChaosRules) (*Chaos, []Endpoint) {
	ctl := &Chaos{killed: map[int]bool{}, eps: make([]*chaosEndpoint, len(eps))}
	out := make([]Endpoint, len(eps))
	for i, ep := range eps {
		ce := &chaosEndpoint{inner: ep, ctl: ctl, rules: rules}
		ce.growLinks(ep.Size())
		ctl.eps[i] = ce
		out[i] = ce
	}
	return ctl, out
}

// growLinks extends the per-destination fault state to n links. Each
// directed link's stream depends only on (seed, sender, receiver), so
// a link created by growth behaves exactly as it would have at
// construction. Callers hold e.mu (or own the endpoint exclusively).
func (e *chaosEndpoint) growLinks(n int) {
	for to := len(e.links); to < n; to++ {
		// One independent deterministic stream per directed link.
		seed := e.rules.Seed*1_000_003 + int64(e.inner.Rank())*4099 + int64(to)
		e.links = append(e.links, &chaosLink{rng: rand.New(rand.NewSource(seed))})
	}
}

func (e *chaosEndpoint) Rank() int { return e.inner.Rank() }
func (e *chaosEndpoint) Size() int { return e.inner.Size() }

// SendCopiesPayload: a frame is either handed to the inner fabric
// before Send returns (inheriting its copy semantics — reported here)
// or held for reordering, in which case the payload is copied first.
func (e *chaosEndpoint) SendCopiesPayload() bool { return CopiesPayload(e.inner) }

// CausalDelivery: injected reordering forfeits any causal guarantee.
func (e *chaosEndpoint) CausalDelivery() bool { return false }

// Flush delegates to the inner fabric's write barrier.
func (e *chaosEndpoint) Flush() error { return Flush(e.inner) }

func (e *chaosEndpoint) Send(msg Message) error {
	if e.ctl.Killed(e.Rank()) || e.ctl.Killed(msg.To) {
		// Black hole: the frame vanishes, as on a dead wire.
		return nil
	}
	if e.rules.Zero() {
		return e.inner.Send(msg)
	}
	if msg.To < 0 || msg.To >= e.Size() || msg.To == e.Rank() {
		// Faults model the wire; self-delivery never traverses it. The
		// reliability layer above never retransmits on the self link
		// (a node cannot outlive itself), so a fault injected here
		// would be unhealable — e.g. a dropped self-addressed SHUTDOWN
		// would hang the serve loop forever.
		return e.inner.Send(msg)
	}
	e.mu.Lock()
	if msg.To >= len(e.links) {
		e.growLinks(e.Size())
	}
	link := e.links[msg.To]
	roll := func(p float64) bool { return p > 0 && link.rng.Float64() < p }
	drop := roll(e.rules.Drop)
	dup := roll(e.rules.Dup)
	reorder := roll(e.rules.Reorder)
	held := link.held
	link.held = nil
	if drop {
		e.mu.Unlock()
		// The dropped frame still releases any frame held behind it.
		if held != nil {
			return e.inner.Send(*held)
		}
		return nil
	}
	if reorder {
		// Hold this frame until the link's next send; own the payload.
		hold := msg
		if len(hold.Payload) > 0 {
			hold.Payload = append([]byte(nil), hold.Payload...)
		}
		link.held = &hold
		e.mu.Unlock()
		if held != nil {
			return e.inner.Send(*held)
		}
		return nil
	}
	e.mu.Unlock()
	if err := e.inner.Send(msg); err != nil {
		return err
	}
	if dup {
		d := msg
		if !CopiesPayload(e.inner) && len(d.Payload) > 0 {
			d.Payload = append([]byte(nil), d.Payload...)
		}
		_ = e.inner.Send(d)
	}
	if held != nil {
		return e.inner.Send(*held)
	}
	return nil
}

func (e *chaosEndpoint) Recv() (Message, error) { return e.inner.Recv() }
func (e *chaosEndpoint) Close() error           { return e.inner.Close() }
