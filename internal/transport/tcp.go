package transport

import (
	"bufio"
	"fmt"
	"net"
	"sync"

	"autodist/internal/wire"
)

// tcpEndpoint is one node of a TCP fabric. Every node listens on its
// own address; connections are dialled lazily per destination and each
// direction uses its own connection, so no handshake protocol is
// needed beyond the frame envelope carrying the sender rank. Frames
// use the shared wire codec (length-prefixed binary), the same format
// family as the runtime's payload bodies.
type tcpEndpoint struct {
	rank  int
	addrs []string

	ln    net.Listener
	inbox chan Message

	// mu guards the connection table and the accepted list only —
	// never a dial or a write. Dials run outside it (a slow peer must
	// not stall sends to every other peer) and each connection carries
	// its own write mutex, so concurrent senders serialise per
	// destination, not per endpoint.
	mu       sync.Mutex
	conns    map[int]*tcpConn
	accepted []net.Conn

	closed  bool
	closeMu sync.Mutex
	wg      sync.WaitGroup
}

// tcpConn is one outgoing connection with its per-connection write
// lock: whole frames stay contiguous on the stream while sends to
// different peers proceed in parallel.
type tcpConn struct {
	mu sync.Mutex
	c  net.Conn
}

// NewTCPNode creates the endpoint for rank within a cluster whose
// listen addresses are addrs (index = rank). The listener for this rank
// must be passed in, so callers can bind ":0" and exchange real
// addresses first.
func NewTCPNode(rank int, addrs []string, ln net.Listener) (Endpoint, error) {
	if rank < 0 || rank >= len(addrs) {
		return nil, fmt.Errorf("transport: rank %d out of range", rank)
	}
	e := &tcpEndpoint{
		rank:  rank,
		addrs: addrs,
		ln:    ln,
		inbox: make(chan Message, 1024),
		conns: map[int]*tcpConn{},
	}
	e.wg.Add(1)
	go e.acceptLoop()
	return e, nil
}

// Listen binds a TCP listener on addr (use "127.0.0.1:0" for an
// ephemeral port) and returns it with its resolved address.
func Listen(addr string) (net.Listener, string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, "", err
	}
	return ln, ln.Addr().String(), nil
}

func (e *tcpEndpoint) acceptLoop() {
	defer e.wg.Done()
	for {
		conn, err := e.ln.Accept()
		if err != nil {
			return
		}
		e.mu.Lock()
		e.accepted = append(e.accepted, conn)
		e.mu.Unlock()
		e.wg.Add(1)
		go e.readLoop(conn)
	}
}

func (e *tcpEndpoint) readLoop(conn net.Conn) {
	defer e.wg.Done()
	r := bufio.NewReader(conn)
	for {
		f, err := wire.ReadFrame(r)
		if err != nil {
			_ = conn.Close()
			return
		}
		msg := Message{From: f.From, To: f.To, Tag: f.Tag, TID: f.TID, Kind: f.Kind, Time: f.Time, Payload: f.Payload}
		e.closeMu.Lock()
		closed := e.closed
		if !closed {
			e.inbox <- msg
		}
		e.closeMu.Unlock()
		if closed {
			_ = conn.Close()
			return
		}
	}
}

func (e *tcpEndpoint) Rank() int { return e.rank }
func (e *tcpEndpoint) Size() int { return len(e.addrs) }

func (e *tcpEndpoint) Send(msg Message) error {
	if msg.To < 0 || msg.To >= len(e.addrs) {
		return fmt.Errorf("transport: bad destination %d", msg.To)
	}
	msg.From = e.rank
	frame := wire.Frame{From: msg.From, To: msg.To, Tag: msg.Tag, TID: msg.TID, Kind: msg.Kind, Time: msg.Time, Payload: msg.Payload}
	buf := wire.AppendFrame(nil, &frame)
	conn, err := e.connTo(msg.To)
	if err != nil {
		return err
	}
	// One Write per frame keeps frames contiguous on the stream; the
	// per-connection lock serialises writers per destination, so a
	// slow write to one peer never stalls sends to the others.
	conn.mu.Lock()
	_, err = conn.c.Write(buf)
	conn.mu.Unlock()
	if err != nil {
		_ = conn.c.Close()
		e.mu.Lock()
		if e.conns[msg.To] == conn {
			delete(e.conns, msg.To)
		}
		e.mu.Unlock()
		return fmt.Errorf("transport: send to %d: %w", msg.To, err)
	}
	return nil
}

// connTo returns the live connection to a peer, dialling it outside
// the endpoint lock if none exists. Concurrent first sends may race to
// dial; the loser's connection is closed and the table's entry wins,
// so every sender funnels through one connection per destination.
func (e *tcpEndpoint) connTo(to int) (*tcpConn, error) {
	e.mu.Lock()
	conn := e.conns[to]
	e.mu.Unlock()
	if conn != nil {
		return conn, nil
	}
	c, err := net.Dial("tcp", e.addrs[to])
	if err != nil {
		return nil, fmt.Errorf("transport: dial node %d: %w", to, err)
	}
	e.mu.Lock()
	if existing := e.conns[to]; existing != nil {
		e.mu.Unlock()
		_ = c.Close()
		return existing, nil
	}
	conn = &tcpConn{c: c}
	e.conns[to] = conn
	e.mu.Unlock()
	return conn, nil
}

func (e *tcpEndpoint) Recv() (Message, error) {
	msg, ok := <-e.inbox
	if !ok {
		return Message{}, ErrClosed
	}
	return msg, nil
}

func (e *tcpEndpoint) Close() error {
	e.closeMu.Lock()
	if e.closed {
		e.closeMu.Unlock()
		return nil
	}
	e.closed = true
	e.closeMu.Unlock()
	_ = e.ln.Close()
	e.mu.Lock()
	for _, c := range e.conns {
		_ = c.c.Close()
	}
	for _, c := range e.accepted {
		_ = c.Close()
	}
	e.mu.Unlock()
	e.wg.Wait()
	close(e.inbox)
	return nil
}

// NewTCPCluster is a convenience for tests and single-host runs: it
// binds n ephemeral listeners on localhost and returns connected
// endpoints.
func NewTCPCluster(n int) ([]Endpoint, error) {
	lns := make([]net.Listener, n)
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		ln, addr, err := Listen("127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		lns[i] = ln
		addrs[i] = addr
	}
	eps := make([]Endpoint, n)
	for i := 0; i < n; i++ {
		ep, err := NewTCPNode(i, addrs, lns[i])
		if err != nil {
			return nil, err
		}
		eps[i] = ep
	}
	return eps, nil
}
