package transport

import (
	"bufio"
	"bytes"
	"fmt"
	"net"
	"runtime"
	"sync"
	"time"

	"autodist/internal/wire"
)

// TCPOptions tunes the TCP fabric's hot path. The zero value is the
// legacy per-frame behaviour (one locked Write per Send, no
// compression); DefaultTCPOptions enables the wire-speed pipeline.
type TCPOptions struct {
	// Coalesce enables the per-connection write combiner: concurrent
	// senders append encoded frames into a shared batch and the first
	// of them drains it with single large Writes (see tcpConn). The
	// byte stream is identical to uncoalesced sends — only the Write
	// boundaries change — so protocol A/B guards are unaffected.
	Coalesce bool
	// Compress negotiates DEFLATE segment framing per connection
	// (wire.SegmentMagic preamble): payload-heavy batches —
	// TRANSFER/REPLICATE snapshots, large argument arrays — shrink on
	// the wire. Off by default; both endpoints must enable it. Implies
	// the combiner write path (segments need whole-batch framing).
	Compress bool
	// CompressMin is the batch size below which compression is skipped
	// (0 = wire.DefaultCompressMin).
	CompressMin int
	// ReadBuf sizes each connection's read buffer (0 = 64 KiB), so the
	// read loop drains whole coalesced batches per syscall and decodes
	// ahead of inbox consumption.
	ReadBuf int
	// MaxPending bounds a connection's unwritten batch in bytes
	// (0 = 1 MiB); senders beyond it wait for the drain (backpressure
	// instead of unbounded buffering).
	MaxPending int
}

// DefaultTCPOptions is the wire-speed configuration: coalescing on,
// compression off (it changes bytes on the wire, so it stays opt-in).
func DefaultTCPOptions() TCPOptions {
	return TCPOptions{Coalesce: true}
}

func (o *TCPOptions) readBuf() int {
	if o.ReadBuf <= 0 {
		return 64 << 10
	}
	return o.ReadBuf
}

func (o *TCPOptions) maxPending() int {
	if o.MaxPending <= 0 {
		return 1 << 20
	}
	return o.MaxPending
}

// closeFlushTimeout bounds how long Close waits for a connection's
// pending batch to reach the socket before tearing it down anyway.
const closeFlushTimeout = 2 * time.Second

// combineYields bounds how many scheduler yields the flusher spends
// growing a batch before writing it out (see flusherLoop).
const combineYields = 4

// tcpEndpoint is one node of a TCP fabric. Every node listens on its
// own address; connections are dialled lazily per destination and each
// direction uses its own connection (dialled conns are write-only,
// accepted conns are read-only), so no handshake protocol is needed
// beyond the frame envelope carrying the sender rank — plus, when
// compression is enabled, the segment-magic preamble a dialler writes
// before its first frame. Frames use the shared wire codec
// (length-prefixed binary), the same format family as the runtime's
// payload bodies.
type tcpEndpoint struct {
	rank int
	book *addrBook
	opts TCPOptions

	ln    net.Listener
	inbox chan Message

	// done closes on Close. Read loops select on it around the inbox
	// send, so a full inbox with no receiver can never wedge Close —
	// close-checking must not span a blocking channel send (the old
	// closeMu design deadlocked exactly there).
	done      chan struct{}
	closeOnce sync.Once

	// mu guards the connection table and the accepted list only —
	// never a dial or a write. Dials run outside it (a slow peer must
	// not stall sends to every other peer) and each connection has its
	// own write combiner, so senders coordinate per destination, not
	// per endpoint.
	mu       sync.Mutex
	conns    map[int]*tcpConn
	accepted []net.Conn

	wg sync.WaitGroup
}

// tcpConn is one outgoing connection with its write combiner: senders
// append encoded frames to pending under mu — no syscall on the send
// path — and a dedicated flusher goroutine drains the batch into
// single large Writes, double-buffering so steady-state sends allocate
// nothing. Batching is self-clocking at goroutine-scheduling
// granularity, with no timer: while the flusher is off-CPU or inside a
// Write, every concurrent sender's frames accumulate and leave in the
// next syscall. (A leader-based inline variant — first sender with no
// drain in progress writes the batch itself — was measured first: it
// saves the goroutine handoff on an idle connection, but under
// saturated request/response load on few cores a non-blocking inline
// Write completes before any other sender gets scheduled, so batches
// degenerate to one frame and the combiner becomes pure overhead. The
// flusher's handoff is what creates the batching window.) Whole
// frames stay contiguous and FIFO per destination, exactly as with
// one locked Write per frame.
type tcpConn struct {
	c  net.Conn
	sw *wire.SegmentWriter // non-nil on negotiated-compression conns
	mu sync.Mutex
	// work wakes the flusher (pending became non-empty, or close);
	// drained wakes senders blocked on backpressure and flush/close
	// waiters (a batch reached the socket, or the connection died).
	work    *sync.Cond
	drained *sync.Cond
	// pending is the unwritten batch; spare is the previously written
	// buffer, kept for ping-pong reuse.
	pending []byte
	spare   []byte
	writing bool // flusher is inside writeOut
	closed  bool
	err     error
}

func newTCPConn(c net.Conn, sw *wire.SegmentWriter) *tcpConn {
	tc := &tcpConn{c: c, sw: sw}
	tc.work = sync.NewCond(&tc.mu)
	tc.drained = sync.NewCond(&tc.mu)
	return tc
}

var errConnClosed = fmt.Errorf("transport: connection closed")

// addrBook is a TCP cluster's rank→address table. Endpoints built
// together (NewTCPClusterOpts, GrowEndpoint) share one book, so
// admitting a node makes every member's Size() and routing reflect the
// larger cluster at once; endpoints built standalone get a private
// book.
type addrBook struct {
	mu    sync.RWMutex
	addrs []string
}

func (b *addrBook) size() int {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return len(b.addrs)
}

func (b *addrBook) addr(i int) (string, bool) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	if i < 0 || i >= len(b.addrs) {
		return "", false
	}
	return b.addrs[i], true
}

func (b *addrBook) add(addr string) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.addrs = append(b.addrs, addr)
	return len(b.addrs) - 1
}

// enqueue appends one frame to the batch and wakes the flusher.
// maxPending bounds the unwritten batch in bytes: senders beyond it
// wait for a drain (backpressure instead of unbounded buffering).
func (c *tcpConn) enqueue(f *wire.Frame, maxPending int) error {
	c.mu.Lock()
	for c.err == nil && !c.closed && len(c.pending) >= maxPending {
		c.drained.Wait()
	}
	if c.err != nil {
		err := c.err
		c.mu.Unlock()
		return err
	}
	if c.closed {
		c.mu.Unlock()
		return errConnClosed
	}
	c.pending = wire.AppendFrame(c.pending, f)
	c.work.Signal()
	c.mu.Unlock()
	return nil
}

// flusherLoop is the connection's drain goroutine: it swaps the
// pending batch against the spare buffer, writes it out in one call
// (one syscall, or one compressed segment), and goes back to sleep
// when the queue is empty. It exits once the connection is closed and
// drained, or on the first write error.
func (c *tcpConn) flusherLoop() {
	c.mu.Lock()
	for {
		for c.err == nil && !c.closed && len(c.pending) == 0 {
			c.work.Wait()
		}
		if c.err != nil || (c.closed && len(c.pending) == 0) {
			c.drained.Broadcast()
			c.mu.Unlock()
			return
		}
		// Combine window without a timer: yield before draining, so
		// every already-runnable producer (handlers replying, the read
		// loop delivering, logical threads issuing requests) gets to
		// append its frame to this batch first, and keep yielding
		// while frames are still arriving (bounded, so a steady
		// producer cannot starve the drain). On an idle connection the
		// first yield adds nothing and the batch leaves immediately;
		// under load this is what grows batches past one frame.
		for n, i := len(c.pending), 0; i < combineYields; i++ {
			c.mu.Unlock()
			runtime.Gosched()
			c.mu.Lock()
			if len(c.pending) == n {
				break
			}
			n = len(c.pending)
		}
		buf := c.pending
		c.pending = c.spare[:0]
		c.spare = nil
		c.writing = true
		c.mu.Unlock()
		werr := c.writeOut(buf)
		c.mu.Lock()
		c.spare = buf[:0]
		c.writing = false
		if werr != nil && c.err == nil {
			c.err = werr
		}
		// The batch left (or died); wake backpressured senders and
		// flush/close waiters.
		c.drained.Broadcast()
	}
}

// writeDirect is the legacy uncombined path: encode into a pooled
// buffer, one locked Write per frame.
func (c *tcpConn) writeDirect(f *wire.Frame) error {
	buf := wire.AppendFrame(wire.GetBuf(), f)
	c.mu.Lock()
	err := c.err
	if err == nil && c.closed {
		err = errConnClosed
	}
	if err == nil {
		_, err = c.c.Write(buf)
		if err != nil {
			c.err = err
		}
	}
	c.mu.Unlock()
	wire.PutBuf(buf)
	return err
}

func (c *tcpConn) writeOut(buf []byte) error {
	if c.sw != nil {
		return c.sw.WriteSegment(buf)
	}
	_, err := c.c.Write(buf)
	return err
}

// flush blocks until every enqueued frame has reached the socket (or
// the connection died). A live connection always has its flusher, so
// this terminates.
func (c *tcpConn) flush() error {
	c.mu.Lock()
	for c.err == nil && !c.closed && (c.writing || len(c.pending) > 0) {
		c.drained.Wait()
	}
	err := c.err
	c.mu.Unlock()
	return err
}

// close drains the batch (bounded by closeFlushTimeout via a write
// deadline, so a wedged peer cannot hang Close) and tears the
// connection down.
func (c *tcpConn) close() {
	c.mu.Lock()
	c.closed = true
	c.work.Broadcast()
	c.drained.Broadcast()
	draining := c.writing || len(c.pending) > 0
	c.mu.Unlock()
	if draining {
		_ = c.c.SetWriteDeadline(time.Now().Add(closeFlushTimeout))
		c.mu.Lock()
		for c.err == nil && (c.writing || len(c.pending) > 0) {
			c.drained.Wait()
		}
		c.mu.Unlock()
	}
	_ = c.c.Close()
}

// NewTCPNode creates the endpoint for rank within a cluster whose
// listen addresses are addrs (index = rank), with the default
// wire-speed options. The listener for this rank must be passed in, so
// callers can bind ":0" and exchange real addresses first.
func NewTCPNode(rank int, addrs []string, ln net.Listener) (Endpoint, error) {
	return NewTCPNodeOpts(rank, addrs, ln, DefaultTCPOptions())
}

// NewTCPNodeOpts is NewTCPNode with explicit transport options. Every
// node of a cluster must use the same options (compression is
// negotiated per connection, but a compressing dialler needs an
// accepter that understands the preamble).
func NewTCPNodeOpts(rank int, addrs []string, ln net.Listener, opts TCPOptions) (Endpoint, error) {
	return newTCPNodeBook(rank, &addrBook{addrs: append([]string(nil), addrs...)}, ln, opts)
}

func newTCPNodeBook(rank int, book *addrBook, ln net.Listener, opts TCPOptions) (Endpoint, error) {
	if rank < 0 || rank >= book.size() {
		return nil, fmt.Errorf("transport: rank %d out of range", rank)
	}
	e := &tcpEndpoint{
		rank:  rank,
		book:  book,
		opts:  opts,
		ln:    ln,
		inbox: make(chan Message, 1024),
		done:  make(chan struct{}),
		conns: map[int]*tcpConn{},
	}
	e.wg.Add(1)
	go e.acceptLoop()
	return e, nil
}

// GrowEndpoint adds one node to the cluster: it binds a fresh
// ephemeral listener, registers its address in the shared book (so
// every endpoint built from the same book immediately routes to it)
// and returns the new endpoint with the next rank.
func (e *tcpEndpoint) GrowEndpoint() (Endpoint, error) {
	ln, addr, err := Listen("127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	rank := e.book.add(addr)
	ep, err := newTCPNodeBook(rank, e.book, ln, e.opts)
	if err != nil {
		_ = ln.Close()
		return nil, err
	}
	return ep, nil
}

// Listen binds a TCP listener on addr (use "127.0.0.1:0" for an
// ephemeral port) and returns it with its resolved address.
func Listen(addr string) (net.Listener, string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, "", err
	}
	return ln, ln.Addr().String(), nil
}

func (e *tcpEndpoint) acceptLoop() {
	defer e.wg.Done()
	for {
		conn, err := e.ln.Accept()
		if err != nil {
			return
		}
		e.mu.Lock()
		e.accepted = append(e.accepted, conn)
		e.mu.Unlock()
		e.wg.Add(1)
		go e.readLoop(conn)
	}
}

// readLoop decodes one inbound connection. The sized read buffer
// drains whole coalesced batches per syscall and lets decoding run
// ahead of inbox consumption (the inbox channel is the pipeline stage
// between decode and the runtime's serve loop). Frame payloads are
// copied into pooled buffers — the consumer releases them with
// wire.PutBuf once the message is handled — so the decode scratch is
// reused frame after frame and steady-state receive allocates nothing.
func (e *tcpEndpoint) readLoop(conn net.Conn) {
	defer e.wg.Done()
	defer conn.Close()
	br := bufio.NewReaderSize(conn, e.opts.readBuf())
	if e.opts.Compress {
		if magic, err := br.Peek(len(wire.SegmentMagic)); err == nil && bytes.Equal(magic, wire.SegmentMagic[:]) {
			_, _ = br.Discard(len(wire.SegmentMagic))
			e.readSegments(br)
			return
		}
	}
	e.readFrames(br)
}

func (e *tcpEndpoint) readFrames(br *bufio.Reader) {
	var scratch []byte
	for {
		f, sc, err := wire.ReadFrameScratch(br, scratch)
		scratch = sc
		if err != nil || !e.deliver(&f) {
			return
		}
	}
}

func (e *tcpEndpoint) readSegments(br *bufio.Reader) {
	sr := wire.NewSegmentReader(br)
	for {
		seg, err := sr.Next()
		if err != nil {
			return
		}
		for len(seg) > 0 {
			f, rest, err := wire.DecodeFrameBuf(seg)
			if err != nil || !e.deliver(&f) {
				return
			}
			seg = rest
		}
	}
}

// deliver hands one decoded frame to the inbox, copying the payload
// out of the decode scratch into a pooled buffer the consumer owns. It
// never blocks past Close: the done select is what keeps a full inbox
// from wedging endpoint teardown.
func (e *tcpEndpoint) deliver(f *wire.Frame) bool {
	var p []byte
	if len(f.Payload) > 0 {
		p = append(wire.GetBuf(), f.Payload...)
	}
	msg := Message{From: f.From, To: f.To, Tag: f.Tag, TID: f.TID, Kind: f.Kind, Seq: f.Seq, Ack: f.Ack, Dedup: f.Dedup, View: f.View, Time: f.Time, Payload: p}
	// Fast path: a non-blocking send skips the two-case select
	// machinery whenever the inbox has room (the common case with a
	// live consumer).
	select {
	case e.inbox <- msg:
		return true
	default:
	}
	select {
	case e.inbox <- msg:
		return true
	case <-e.done:
		return false
	}
}

func (e *tcpEndpoint) Rank() int { return e.rank }
func (e *tcpEndpoint) Size() int { return e.book.size() }

// SendCopiesPayload reports that Send consumes msg.Payload before
// returning (the bytes are appended to a connection batch or written),
// so callers may recycle the payload buffer immediately — see
// transport.CopiesPayload.
func (e *tcpEndpoint) SendCopiesPayload() bool { return true }

func (e *tcpEndpoint) Send(msg Message) error {
	if msg.To < 0 || msg.To >= e.book.size() {
		return fmt.Errorf("transport: bad destination %d", msg.To)
	}
	msg.From = e.rank
	frame := wire.Frame{From: msg.From, To: msg.To, Tag: msg.Tag, TID: msg.TID, Kind: msg.Kind, Seq: msg.Seq, Ack: msg.Ack, Dedup: msg.Dedup, View: msg.View, Time: msg.Time, Payload: msg.Payload}
	conn, err := e.connTo(msg.To)
	if err != nil {
		return fmt.Errorf("transport: send to node %d (frame kind %d): %w", msg.To, msg.Kind, err)
	}
	if e.opts.Coalesce || conn.sw != nil {
		err = conn.enqueue(&frame, e.opts.maxPending())
	} else {
		err = conn.writeDirect(&frame)
	}
	if err != nil {
		e.dropConn(msg.To, conn)
		return fmt.Errorf("transport: send to node %d (frame kind %d): %w", msg.To, msg.Kind, err)
	}
	return nil
}

// Flush blocks until every frame enqueued so far has been handed to
// the kernel on every connection — the transport-level flush barrier
// runtime shutdown uses so no frame is stranded in a write batch.
func (e *tcpEndpoint) Flush() error {
	e.mu.Lock()
	conns := make([]*tcpConn, 0, len(e.conns))
	for _, c := range e.conns {
		conns = append(conns, c)
	}
	e.mu.Unlock()
	var first error
	for _, c := range conns {
		if err := c.flush(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// dropConn removes a broken connection from the table (idempotent —
// the loser of a concurrent drop finds someone else's entry or none)
// and closes its socket so the peer's read loop learns promptly.
func (e *tcpEndpoint) dropConn(to int, conn *tcpConn) {
	e.mu.Lock()
	if e.conns[to] == conn {
		delete(e.conns, to)
	}
	e.mu.Unlock()
	_ = conn.c.Close()
}

// connTo returns the live connection to a peer, dialling it outside
// the endpoint lock if none exists. Concurrent first sends may race to
// dial; the loser's connection is closed and the table's entry wins,
// so every sender funnels through one connection per destination. A
// compressing endpoint announces segment framing with the magic
// preamble before any frame.
func (e *tcpEndpoint) connTo(to int) (*tcpConn, error) {
	e.mu.Lock()
	conn := e.conns[to]
	e.mu.Unlock()
	if conn != nil {
		return conn, nil
	}
	addr, ok := e.book.addr(to)
	if !ok {
		return nil, fmt.Errorf("transport: bad destination %d", to)
	}
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: dial node %d: %w", to, err)
	}
	var sw *wire.SegmentWriter
	if e.opts.Compress {
		if _, err := c.Write(wire.SegmentMagic[:]); err != nil {
			_ = c.Close()
			return nil, fmt.Errorf("transport: dial node %d: %w", to, err)
		}
		sw = wire.NewSegmentWriter(c, e.opts.CompressMin)
	}
	e.mu.Lock()
	if existing := e.conns[to]; existing != nil {
		e.mu.Unlock()
		_ = c.Close()
		return existing, nil
	}
	conn = newTCPConn(c, sw)
	e.conns[to] = conn
	if e.opts.Coalesce || sw != nil {
		// Combined connections get their drain goroutine; uncombined
		// ones write inline (writeDirect) and never enqueue.
		e.wg.Add(1)
		go func() {
			defer e.wg.Done()
			conn.flusherLoop()
		}()
	}
	e.mu.Unlock()
	return conn, nil
}

func (e *tcpEndpoint) Recv() (Message, error) {
	// Drain buffered messages before honouring Close, like the
	// in-process fabric.
	select {
	case msg := <-e.inbox:
		return msg, nil
	default:
	}
	select {
	case msg := <-e.inbox:
		return msg, nil
	case <-e.done:
		return Message{}, ErrClosed
	}
}

func (e *tcpEndpoint) Close() error {
	e.closeOnce.Do(func() {
		close(e.done)
		_ = e.ln.Close()
		e.mu.Lock()
		conns := make([]*tcpConn, 0, len(e.conns))
		for _, c := range e.conns {
			conns = append(conns, c)
		}
		accepted := append([]net.Conn(nil), e.accepted...)
		e.mu.Unlock()
		for _, c := range conns {
			c.close()
		}
		for _, c := range accepted {
			_ = c.Close()
		}
		e.wg.Wait()
	})
	return nil
}

// NewTCPCluster is a convenience for tests and single-host runs: it
// binds n ephemeral listeners on localhost and returns connected
// endpoints with the default options.
func NewTCPCluster(n int) ([]Endpoint, error) {
	return NewTCPClusterOpts(n, DefaultTCPOptions())
}

// NewTCPClusterOpts is NewTCPCluster with explicit transport options
// applied to every node.
func NewTCPClusterOpts(n int, opts TCPOptions) ([]Endpoint, error) {
	lns := make([]net.Listener, n)
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		ln, addr, err := Listen("127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		lns[i] = ln
		addrs[i] = addr
	}
	book := &addrBook{addrs: addrs}
	eps := make([]Endpoint, n)
	for i := 0; i < n; i++ {
		ep, err := newTCPNodeBook(i, book, lns[i], opts)
		if err != nil {
			return nil, err
		}
		eps[i] = ep
	}
	return eps, nil
}
