package graph

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestAddVertexAssignsSequentialIDs(t *testing.T) {
	g := New("t")
	for i := 0; i < 5; i++ {
		id := g.AddVertex("v", 1)
		if id != i {
			t.Fatalf("AddVertex returned %d, want %d", id, i)
		}
	}
	if g.NumVertices() != 5 {
		t.Fatalf("NumVertices = %d, want 5", g.NumVertices())
	}
}

func TestWeightDimensionalityEnforced(t *testing.T) {
	g := New("t")
	g.AddVertex("a", 1, 2, 3)
	if g.Dims() != 3 {
		t.Fatalf("Dims = %d, want 3", g.Dims())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on mismatched weight dims")
		}
	}()
	g.AddVertex("b", 1)
}

func TestEdgeCutAndCutEdges(t *testing.T) {
	g := New("t")
	a := g.AddVertex("a", 1)
	b := g.AddVertex("b", 1)
	c := g.AddVertex("c", 1)
	g.AddEdge(a, b, 5, KindUse)
	g.AddEdge(b, c, 7, KindUse)
	g.AddEdge(a, c, 11, KindUse)
	g.SetParts([]int{0, 0, 1})
	if cut := g.EdgeCut(); cut != 18 {
		t.Errorf("EdgeCut = %d, want 18", cut)
	}
	if n := g.CutEdges(); n != 2 {
		t.Errorf("CutEdges = %d, want 2", n)
	}
	g.SetParts([]int{0, 0, 0})
	if cut := g.EdgeCut(); cut != 0 {
		t.Errorf("EdgeCut all-same = %d, want 0", cut)
	}
}

func TestNeighborsDistinctSorted(t *testing.T) {
	g := New("t")
	a := g.AddVertex("a", 1)
	b := g.AddVertex("b", 1)
	c := g.AddVertex("c", 1)
	g.AddEdge(a, b, 1, KindUse)
	g.AddEdge(b, a, 1, KindUse) // parallel reverse edge
	g.AddEdge(a, c, 1, KindUse)
	g.AddEdge(a, a, 1, KindUse) // self loop ignored in neighbors
	nb := g.Neighbors(a)
	if len(nb) != 2 || nb[0] != b || nb[1] != c {
		t.Fatalf("Neighbors(a) = %v, want [%d %d]", nb, b, c)
	}
}

func TestPartWeights(t *testing.T) {
	g := New("t")
	g.AddVertex("a", 2, 10)
	g.AddVertex("b", 3, 20)
	g.AddVertex("c", 5, 30)
	g.SetParts([]int{0, 1, 1})
	pw := g.PartWeights(2)
	if pw[0][0] != 2 || pw[0][1] != 10 {
		t.Errorf("part 0 weights = %v, want [2 10]", pw[0])
	}
	if pw[1][0] != 8 || pw[1][1] != 50 {
		t.Errorf("part 1 weights = %v, want [8 50]", pw[1])
	}
}

func TestHasEdgeRespectsDirectionAndKind(t *testing.T) {
	g := New("t")
	a := g.AddVertex("a", 1)
	b := g.AddVertex("b", 1)
	g.AddEdge(a, b, 1, KindExport)
	if !g.HasEdge(a, b, KindExport) {
		t.Error("expected edge a->b export")
	}
	if g.HasEdge(b, a, KindExport) {
		t.Error("unexpected reverse edge")
	}
	if g.HasEdge(a, b, KindImport) {
		t.Error("unexpected kind match")
	}
}

func TestCloneIsDeep(t *testing.T) {
	g := New("t")
	a := g.AddVertex("a", 1, 2)
	b := g.AddVertex("b", 3, 4)
	g.AddEdge(a, b, 9, KindCreate)
	c := g.Clone()
	c.Vertex(a).Weights[0] = 99
	c.Vertex(a).Part = 1
	if g.Vertex(a).Weights[0] != 1 {
		t.Error("clone shares weight storage")
	}
	if g.Vertex(a).Part != -1 {
		t.Error("clone shares part assignment")
	}
	if c.NumEdges() != 1 || c.Edge(0).Weight != 9 {
		t.Error("clone lost edges")
	}
}

func TestTotalVertexWeight(t *testing.T) {
	g := New("t")
	g.AddVertex("a", 1, 100)
	g.AddVertex("b", 2, 200)
	tot := g.TotalVertexWeight()
	if tot[0] != 3 || tot[1] != 300 {
		t.Fatalf("TotalVertexWeight = %v, want [3 300]", tot)
	}
}

func TestVCGOutputContainsNodesEdgesAndParts(t *testing.T) {
	g := New("odg")
	a := g.AddVertex("1Bank", 1)
	b := g.AddVertex("1Account", 1)
	g.AddLabeledEdge(a, b, 1, KindCreate, "")
	g.SetParts([]int{0, 1})
	var sb strings.Builder
	if err := g.VCG(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{`title: "odg"`, `"1Bank [0]"`, `"1Account [1]"`, `label: "create"`, "graph: {"} {
		if !strings.Contains(out, want) {
			t.Errorf("VCG output missing %q:\n%s", want, out)
		}
	}
}

func TestDOTOutput(t *testing.T) {
	g := New("crg")
	a := g.AddVertex("DT_Bank", 1)
	b := g.AddVertex("DT_Account", 1)
	g.AddEdge(a, b, 1, KindUse)
	var sb strings.Builder
	if err := g.DOT(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `"DT_Bank" -> "DT_Account" [label="use"]`) {
		t.Errorf("DOT output malformed:\n%s", sb.String())
	}
}

func TestEdgeKindStrings(t *testing.T) {
	cases := map[EdgeKind]string{
		KindUse: "use", KindExport: "export", KindImport: "import",
		KindCreate: "create", KindReference: "reference", KindPlain: "edge",
	}
	for k, want := range cases {
		if k.String() != want {
			t.Errorf("EdgeKind(%d).String() = %q, want %q", k, k.String(), want)
		}
	}
}

// Property: for any partition assignment, EdgeCut is bounded by the total
// edge weight, and a uniform assignment yields zero cut.
func TestEdgeCutProperties(t *testing.T) {
	f := func(edges []uint8, partsSeed []bool) bool {
		const n = 8
		g := New("p")
		for i := 0; i < n; i++ {
			g.AddVertex("v", 1)
		}
		var total int64
		for i, e := range edges {
			from := i % n
			to := int(e) % n
			w := int64(e%13) + 1
			g.AddEdge(from, to, w, KindPlain)
			if from != to {
				total += w
			}
		}
		parts := make([]int, n)
		for i := range parts {
			if i < len(partsSeed) && partsSeed[i] {
				parts[i] = 1
			}
		}
		g.SetParts(parts)
		if g.EdgeCut() > total {
			return false
		}
		g.SetParts(make([]int, n))
		return g.EdgeCut() == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
