package graph

import (
	"fmt"
	"io"
	"strings"
)

// VCG writes the graph in the Visualising Compiler Graphs format consumed
// by the aiSee tool the paper used for Figures 3 and 4. Partition
// assignments, when present, are rendered both as a color class and as a
// "[p]" suffix on the node label, matching the paper's ODG figure.
func (g *Graph) VCG(w io.Writer) error {
	var b strings.Builder
	fmt.Fprintf(&b, "graph: {\n")
	fmt.Fprintf(&b, "  title: %q\n", g.Name)
	b.WriteString("  layoutalgorithm: forcedir\n")
	b.WriteString("  display_edge_labels: yes\n")
	for _, v := range g.vertices {
		label := v.Label
		if v.Part >= 0 {
			label = fmt.Sprintf("%s [%d]", v.Label, v.Part)
		}
		color := "white"
		if v.Part >= 0 {
			color = partColor(v.Part)
		}
		fmt.Fprintf(&b, "  node: { title: %q label: %q color: %s }\n", v.Label, label, color)
	}
	for i := range g.edges {
		e := &g.edges[i]
		label := e.Label
		if label == "" {
			label = e.Kind.String()
		}
		fmt.Fprintf(&b, "  edge: { sourcename: %q targetname: %q label: %q class: %d }\n",
			g.vertices[e.From].Label, g.vertices[e.To].Label, label, int(e.Kind)+1)
	}
	b.WriteString("}\n")
	_, err := io.WriteString(w, b.String())
	return err
}

var vcgColors = []string{"lightblue", "lightgreen", "lightyellow", "lightred", "lightcyan", "lightmagenta", "orange", "lilac"}

func partColor(p int) string {
	return vcgColors[p%len(vcgColors)]
}

// DOT writes the graph in Graphviz DOT format as a convenience for
// environments without a VCG viewer.
func (g *Graph) DOT(w io.Writer) error {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", sanitizeDOT(g.Name))
	for _, v := range g.vertices {
		label := v.Label
		if v.Part >= 0 {
			label = fmt.Sprintf("%s [%d]", v.Label, v.Part)
		}
		fmt.Fprintf(&b, "  %q [label=%q];\n", v.Label, label)
	}
	for i := range g.edges {
		e := &g.edges[i]
		label := e.Label
		if label == "" {
			label = e.Kind.String()
		}
		fmt.Fprintf(&b, "  %q -> %q [label=%q];\n", g.vertices[e.From].Label, g.vertices[e.To].Label, label)
	}
	b.WriteString("}\n")
	_, err := io.WriteString(w, b.String())
	return err
}

func sanitizeDOT(s string) string {
	return strings.Map(func(r rune) rune {
		if r == '"' || r == '\n' {
			return '_'
		}
		return r
	}, s)
}
