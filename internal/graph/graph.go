// Package graph provides the weighted-graph representation shared by the
// dependence analyses and the partitioner.
//
// Vertices carry vector weights (one scalar per resource dimension — the
// paper models memory, CPU and battery) and edges carry a scalar weight
// (the communication volume a cross-partition dependence would incur).
// The structure is an undirected multigraph from the partitioner's point
// of view, but each edge also records a direction and a kind so the
// analyses can store create/use/reference (ODG) or use/export/import
// (CRG) relations in the same structure and export them to VCG.
package graph

import (
	"fmt"
	"sort"
)

// EdgeKind labels the semantic relation an edge represents.
type EdgeKind uint8

// Edge kinds used by the class relation graph and object dependence graph.
const (
	KindUse EdgeKind = iota
	KindExport
	KindImport
	KindCreate
	KindReference
	KindPlain
)

// String returns the lower-case label used in VCG dumps.
func (k EdgeKind) String() string {
	switch k {
	case KindUse:
		return "use"
	case KindExport:
		return "export"
	case KindImport:
		return "import"
	case KindCreate:
		return "create"
	case KindReference:
		return "reference"
	default:
		return "edge"
	}
}

// Vertex is a node of a Graph. The zero value is ready to use.
type Vertex struct {
	// ID is the vertex's index within its Graph.
	ID int
	// Label is a human-readable name used in dumps and VCG output.
	Label string
	// Weights is the resource vector (e.g. memory, CPU, battery).
	// All vertices of a graph must have Weights of equal length.
	Weights []int64
	// Part is the partition assigned by a partitioner, or -1.
	Part int
	// Attr holds optional analysis-specific payload.
	Attr any
}

// Edge connects two vertices. Edges are stored directed (From → To) so the
// analyses can distinguish exporter from importer, but the partitioner
// treats them as undirected.
type Edge struct {
	From, To int
	Weight   int64
	Kind     EdgeKind
	// Label optionally annotates the edge in VCG dumps.
	Label string
}

// Graph is a vertex- and edge-weighted multigraph.
type Graph struct {
	Name     string
	vertices []*Vertex
	edges    []Edge
	// adj[v] lists indices into edges touching v.
	adj [][]int
	// dims is the vertex-weight dimensionality (0 until first vertex).
	dims int
}

// New returns an empty graph with the given name.
func New(name string) *Graph {
	return &Graph{Name: name}
}

// NumVertices returns the number of vertices.
func (g *Graph) NumVertices() int { return len(g.vertices) }

// NumEdges returns the number of edges.
func (g *Graph) NumEdges() int { return len(g.edges) }

// Dims returns the vertex-weight dimensionality.
func (g *Graph) Dims() int { return g.dims }

// AddVertex appends a vertex with the given label and weight vector and
// returns its ID. The first vertex fixes the graph's weight
// dimensionality; subsequent vertices must match it.
func (g *Graph) AddVertex(label string, weights ...int64) int {
	if len(g.vertices) == 0 {
		g.dims = len(weights)
	} else if len(weights) != g.dims {
		panic(fmt.Sprintf("graph: vertex %q has %d weight dims, graph has %d", label, len(weights), g.dims))
	}
	id := len(g.vertices)
	w := make([]int64, len(weights))
	copy(w, weights)
	g.vertices = append(g.vertices, &Vertex{ID: id, Label: label, Weights: w, Part: -1})
	g.adj = append(g.adj, nil)
	return id
}

// Vertex returns the vertex with the given ID.
func (g *Graph) Vertex(id int) *Vertex { return g.vertices[id] }

// Vertices returns the underlying vertex slice. Callers must not reorder it.
func (g *Graph) Vertices() []*Vertex { return g.vertices }

// FindVertex returns the first vertex with the given label, or nil.
func (g *Graph) FindVertex(label string) *Vertex {
	for _, v := range g.vertices {
		if v.Label == label {
			return v
		}
	}
	return nil
}

// AddEdge appends a directed edge and returns its index.
func (g *Graph) AddEdge(from, to int, weight int64, kind EdgeKind) int {
	return g.AddLabeledEdge(from, to, weight, kind, "")
}

// AddLabeledEdge appends a directed edge with a display label.
func (g *Graph) AddLabeledEdge(from, to int, weight int64, kind EdgeKind, label string) int {
	if from < 0 || from >= len(g.vertices) || to < 0 || to >= len(g.vertices) {
		panic(fmt.Sprintf("graph: edge (%d,%d) out of range [0,%d)", from, to, len(g.vertices)))
	}
	idx := len(g.edges)
	g.edges = append(g.edges, Edge{From: from, To: to, Weight: weight, Kind: kind, Label: label})
	g.adj[from] = append(g.adj[from], idx)
	if to != from {
		g.adj[to] = append(g.adj[to], idx)
	}
	return idx
}

// HasEdge reports whether a directed edge from → to with the given kind exists.
func (g *Graph) HasEdge(from, to int, kind EdgeKind) bool {
	for _, ei := range g.adj[from] {
		e := &g.edges[ei]
		if e.From == from && e.To == to && e.Kind == kind {
			return true
		}
	}
	return false
}

// Edge returns the edge at index i.
func (g *Graph) Edge(i int) *Edge { return &g.edges[i] }

// Edges returns the underlying edge slice.
func (g *Graph) Edges() []Edge { return g.edges }

// Incident returns the indices of edges touching vertex v.
func (g *Graph) Incident(v int) []int { return g.adj[v] }

// Neighbors returns the distinct vertices adjacent to v (either direction).
func (g *Graph) Neighbors(v int) []int {
	seen := make(map[int]bool)
	var out []int
	for _, ei := range g.adj[v] {
		e := &g.edges[ei]
		u := e.From
		if u == v {
			u = e.To
		}
		if u != v && !seen[u] {
			seen[u] = true
			out = append(out, u)
		}
	}
	sort.Ints(out)
	return out
}

// TotalVertexWeight returns the per-dimension sum of all vertex weights.
func (g *Graph) TotalVertexWeight() []int64 {
	tot := make([]int64, g.dims)
	for _, v := range g.vertices {
		for d, w := range v.Weights {
			tot[d] += w
		}
	}
	return tot
}

// EdgeCut returns the total weight of edges whose endpoints are assigned
// to different partitions (vertices with Part < 0 count as partition 0).
func (g *Graph) EdgeCut() int64 {
	var cut int64
	for i := range g.edges {
		e := &g.edges[i]
		if part(g.vertices[e.From]) != part(g.vertices[e.To]) {
			cut += e.Weight
		}
	}
	return cut
}

// CutEdges returns the number of edges straddling partitions.
func (g *Graph) CutEdges() int {
	n := 0
	for i := range g.edges {
		e := &g.edges[i]
		if part(g.vertices[e.From]) != part(g.vertices[e.To]) {
			n++
		}
	}
	return n
}

func part(v *Vertex) int {
	if v.Part < 0 {
		return 0
	}
	return v.Part
}

// PartWeights returns, for each of k partitions, the per-dimension sum of
// vertex weights assigned to it.
func (g *Graph) PartWeights(k int) [][]int64 {
	pw := make([][]int64, k)
	for i := range pw {
		pw[i] = make([]int64, g.dims)
	}
	for _, v := range g.vertices {
		p := part(v)
		if p >= k {
			p = k - 1
		}
		for d, w := range v.Weights {
			pw[p][d] += w
		}
	}
	return pw
}

// SetParts assigns partition numbers from the given slice, which must have
// one entry per vertex.
func (g *Graph) SetParts(parts []int) {
	if len(parts) != len(g.vertices) {
		panic(fmt.Sprintf("graph: SetParts got %d parts for %d vertices", len(parts), len(g.vertices)))
	}
	for i, p := range parts {
		g.vertices[i].Part = p
	}
}

// Parts returns a copy of the current partition assignment.
func (g *Graph) Parts() []int {
	out := make([]int, len(g.vertices))
	for i, v := range g.vertices {
		out[i] = v.Part
	}
	return out
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	ng := New(g.Name)
	ng.dims = g.dims
	ng.vertices = make([]*Vertex, len(g.vertices))
	for i, v := range g.vertices {
		w := make([]int64, len(v.Weights))
		copy(w, v.Weights)
		ng.vertices[i] = &Vertex{ID: v.ID, Label: v.Label, Weights: w, Part: v.Part, Attr: v.Attr}
	}
	ng.edges = make([]Edge, len(g.edges))
	copy(ng.edges, g.edges)
	ng.adj = make([][]int, len(g.adj))
	for i, a := range g.adj {
		ng.adj[i] = append([]int(nil), a...)
	}
	return ng
}

// String returns a compact textual summary.
func (g *Graph) String() string {
	return fmt.Sprintf("graph %q: %d vertices, %d edges, dims=%d", g.Name, len(g.vertices), len(g.edges), g.dims)
}
