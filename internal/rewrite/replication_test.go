package rewrite

import (
	"testing"

	"autodist/internal/analysis"
	"autodist/internal/bytecode"
	"autodist/internal/compile"
)

const replicatedStampSource = `
class Dict {
	int v0; int v1; int v2;
	Dict() { this.v0 = 1; this.v1 = 2; this.v2 = 3; }
	int get0() { return this.v0; }
	int get1() { return this.v1; }
	int get2() { return this.v2; }
	void set0(int x) { this.v0 = x; }
}
class Main {
	static void main() {
		Dict d = new Dict();
		d.set0(5);
		System.println("" + (d.get0() + d.get1() + d.get2() + d.v0));
	}
}`

// replicatedStampSetup compiles the workload with Dict forced onto
// node 1 (away from Main on node 0) and rewrites it under opts.
func replicatedStampSetup(t *testing.T, opts Options) *Result {
	t.Helper()
	bp, _, err := compile.CompileSource(replicatedStampSource)
	if err != nil {
		t.Fatal(err)
	}
	res, err := analysis.Analyze(bp)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range res.ODG.Graph.Vertices() {
		v.Part = 0
	}
	for _, s := range res.ODG.Sites {
		if s.Allocated == "Dict" {
			res.ODG.Graph.Vertex(s.Node).Part = 1
		}
	}
	rw, err := RewriteWith(bp, res, 2, opts)
	if err != nil {
		t.Fatal(err)
	}
	return rw
}

// stampedKinds collects the integer constants loaded in a rewritten
// method (the access-kind stamps among them). Sites inside fused runs
// carry fusion bits on top of their base kind; those stamps are folded
// back to the base kind so assertions about which access kinds were
// chosen hold whether or not the site happens to fuse.
func stampedKinds(cf *bytecode.ClassFile, m *bytecode.Method) map[int64]bool {
	kinds := map[int64]bool{}
	for _, in := range m.Code {
		if in.Op == bytecode.LDC && cf.Pool.Entry(uint16(in.A)).Tag == bytecode.TagInt {
			v := cf.Pool.Entry(uint16(in.A)).Int
			kinds[v] = true
			if v&FuseMask != 0 {
				kinds[v&^FuseMask] = true
			}
		}
	}
	return kinds
}

func TestReplicationKindsStamped(t *testing.T) {
	rw := replicatedStampSetup(t, Options{Replicate: true})
	if !rw.Plan.Replicated["Dict"] {
		t.Fatalf("Dict not in plan's replicated set: %v", rw.Plan.Replicated)
	}
	// Replicated classes must be dependent on every node, including
	// their home, so owner-side writes run the invalidation protocol.
	for n := 0; n < 2; n++ {
		if !rw.Plan.ClassHasRemote[n]["Dict"] {
			t.Errorf("Dict not dependent on node %d", n)
		}
	}
	cf := rw.Nodes[0].Class("Main")
	kinds := stampedKinds(cf, cf.Method("main", "()V"))
	if !kinds[GetFieldReplicated] {
		t.Errorf("no GetFieldReplicated stamped for mutable field read (constants: %v)", kinds)
	}
	if !kinds[InvokeReplicaRead] {
		t.Errorf("no InvokeReplicaRead stamped for read-only call (constants: %v)", kinds)
	}
	// set0's touch set reaches a replicated class: it must stay a
	// synchronous void call so the write invalidates replicas before
	// the caller resumes.
	if kinds[InvokeMethodVoidAsync] {
		t.Errorf("async void call stamped on a replicated class (constants: %v)", kinds)
	}
}

func TestNoReplicationKindsWithoutOption(t *testing.T) {
	rw := replicatedStampSetup(t, Options{})
	if rw.Plan.Replicated != nil {
		t.Fatalf("plain rewrite populated Replicated: %v", rw.Plan.Replicated)
	}
	cf := rw.Nodes[0].Class("Main")
	kinds := stampedKinds(cf, cf.Method("main", "()V"))
	if kinds[GetFieldReplicated] || kinds[InvokeReplicaRead] {
		t.Errorf("replication kinds stamped without Options.Replicate (constants: %v)", kinds)
	}
	// Baseline sanity: without replication the confined void call is
	// free to go asynchronous (Dict is co-located on node 1).
	if !kinds[InvokeMethodVoidAsync] {
		t.Errorf("expected async stamp in plain mode (constants: %v)", kinds)
	}
}

func TestReplicationChainClosure(t *testing.T) {
	// A write-heavy subclass poisons its whole chain: the rewriter
	// cannot tell chain members apart at a use site, so Dict must stay
	// unreplicated too.
	src := `
class Dict {
	int v0; int v1; int v2;
	int get0() { return this.v0; }
	int get1() { return this.v1; }
	int get2() { return this.v2; }
}
class WDict extends Dict {
	void setAll(int x) { this.v0 = x; this.v1 = x; this.v2 = x; }
}
class Main {
	static void main() {
		Dict d = new Dict();
		WDict w = new WDict();
		w.setAll(2);
		System.println("" + (d.get0() + d.get1() + d.get2() + w.get0()));
	}
}`
	bp, _, err := compile.CompileSource(src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := analysis.Analyze(bp)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range res.ODG.Graph.Vertices() {
		v.Part = 0
	}
	rw, err := RewriteWith(bp, res, 2, Options{Replicate: true})
	if err != nil {
		t.Fatal(err)
	}
	if rw.Plan.Replicated["Dict"] || rw.Plan.Replicated["WDict"] {
		t.Errorf("chain with write-heavy member replicated: %v", rw.Plan.Replicated)
	}
}

func TestReplicateComposesWithAdaptive(t *testing.T) {
	rw := replicatedStampSetup(t, Options{Adaptive: true, Replicate: true})
	if !rw.Plan.Adaptive {
		t.Error("plan not marked adaptive")
	}
	if !rw.Plan.Replicated["Dict"] {
		t.Errorf("Dict not replicated under adaptive+replicate: %v", rw.Plan.Replicated)
	}
	cf := rw.Nodes[0].Class("Main")
	kinds := stampedKinds(cf, cf.Method("main", "()V"))
	if !kinds[InvokeReplicaRead] {
		t.Errorf("no InvokeReplicaRead stamped under adaptive+replicate (constants: %v)", kinds)
	}
	if kinds[InvokeMethodVoidAsync] {
		t.Errorf("async stamp under adaptive plan (constants: %v)", kinds)
	}
}

// TestReplicationChainClosureCascades pins the fixpoint: a hierarchy
// where the parent qualifies only thanks to a read-heavy child, while
// a write-heavy sibling disqualifies the parent, must end with the
// whole chain unreplicated — deleting the parent orphans the
// read-heavy child, and the result must not depend on map iteration
// order.
func TestReplicationChainClosureCascades(t *testing.T) {
	src := `
class Base {
	int v0;
	int get0() { return this.v0; }
}
class R extends Base {
	int r0;
	int ra() { return this.r0 + this.r0 + this.r0; }
	int rb() { return this.r0 + this.r0 + this.r0; }
	int rc() { return this.r0 + this.r0 + this.r0; }
	int rd() { return this.r0 + this.r0 + this.r0; }
}
class W extends Base {
	int w0;
	void wa(int x) { this.w0 = x; this.w0 = x; }
	void wb(int x) { this.w0 = x; this.w0 = x; }
}
class Main {
	static void main() {
		Base b = new Base();
		R r = new R();
		W w = new W();
		w.wa(1);
		w.wb(2);
		System.println("" + (b.get0() + r.ra() + r.rb() + r.rc() + r.rd()));
	}
}`
	bp, _, err := compile.CompileSource(src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := analysis.Analyze(bp)
	if err != nil {
		t.Fatal(err)
	}
	// Precondition for the cascade: Base and R qualify (R's sub-chain
	// cannot see its sibling W, and R's reads carry Base's full-chain
	// sum past W's writes), while W fails — so the closure must first
	// drop Base (related to non-candidate W) and then, in a second
	// pass, drop the orphaned R (related to now-dropped Base).
	if !res.Replication.Candidate("R") || !res.Replication.Candidate("Base") {
		t.Fatalf("Base/R not candidates (reads=%v writes=%v) — workload no longer sets up the cascade",
			res.Replication.Reads, res.Replication.Writes)
	}
	if res.Replication.Candidate("W") {
		t.Fatalf("W unexpectedly a candidate — workload no longer sets up the cascade")
	}
	for _, v := range res.ODG.Graph.Vertices() {
		v.Part = 0
	}
	rw, err := RewriteWith(bp, res, 2, Options{Replicate: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(rw.Plan.Replicated) != 0 {
		t.Errorf("cascade left chain members replicated: %v", rw.Plan.Replicated)
	}
}
