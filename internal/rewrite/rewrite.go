// Package rewrite implements communication generation (paper §4.2,
// Figures 8–9): given the object dependence graph with partition
// assignments, it produces one rewritten bytecode program per node in
// which remote allocations become DependentObject instantiations and
// accesses to potentially-remote objects are redirected through
// DependentObject.access calls. Partitions are generated off-line for
// 1, 2, … n nodes, exactly as the paper describes.
package rewrite

import (
	"fmt"
	"sort"

	"autodist/internal/analysis"
	"autodist/internal/bytecode"
)

// Access kinds carried in the first argument of DependentObject.access,
// following Figure 8's INVOKE_METHOD_HASRETURN constant. Kinds 7–10
// are optimisation kinds stamped when the static facts pass licenses
// them: GetFieldCached marks a read of a write-once field (the proxy
// may cache it forever — the never-invalidated special case of the
// coherence layer), InvokeMethodVoidAsync marks a void call whose
// execution is confined to co-located objects (the runtime may fire it
// asynchronously and aggregate consecutive ones into one batched
// frame), and GetFieldReplicated/InvokeReplicaRead mark accesses to
// replication-candidate classes that a proxy may satisfy from a local
// read replica under the invalidate-on-write protocol.
const (
	InvokeMethodHasReturn = 1
	InvokeMethodVoid      = 2
	GetField              = 3
	PutField              = 4
	GetStatic             = 5
	PutStatic             = 6
	GetFieldCached        = 7
	InvokeMethodVoidAsync = 8
	GetFieldReplicated    = 9
	InvokeReplicaRead     = 10
)

// Fusion bits OR-ed onto an access kind by the access-fusion rewrite.
// They never reach the wire: the runtime strips them before building a
// DepRequest, so fused and unfused streams carry identical kinds.
// FuseEnq marks a run entry whose remote execution is deferred into
// the run's single DEPSEQ exchange (the site returns a placeholder);
// FuseLast marks the run's final access, whose site triggers the
// exchange and returns an Object[] holding every entry's result, which
// the stamped epilogue distributes to the locals the original stores
// target; FusePure marks side-effect-free entries — a run that is all
// pure may be scattered to its destinations concurrently.
const (
	FuseEnq  = 0x100
	FuseLast = 0x200
	FusePure = 0x400
	FuseMask = FuseEnq | FuseLast | FusePure
)

// DependentObjectClass is the name of the synthetic proxy class.
const DependentObjectClass = "DependentObject"

// AccessDesc is the descriptor of the access method: (kind, member,
// args) → result.
const AccessDesc = "(IT[LObject;)LObject;"

// CtorDesc is the DependentObject constructor descriptor: (home node,
// class name, constructor args).
const CtorDesc = "(IT[LObject;)V"

// StaticAccessDesc is the descriptor of the static access entry point:
// (home node, class name, kind, member, args) → result.
const StaticAccessDesc = "(ITIT[LObject;)LObject;"

// Plan captures the partitioning decisions the rewriter and runtime
// share: where every allocation site and every static context lives.
type Plan struct {
	// K is the number of nodes the program was partitioned for.
	K int
	// MainClass is the ExecutionStarter class (paper §5): the class
	// whose static methods are the program's invocable entrypoints,
	// main() being the conventional one.
	MainClass string
	// Entrypoints is the entrypoint table: every static, non-native,
	// non-constructor method of MainClass, mapped to its descriptor.
	// A deployed cluster resolves Cluster.Invoke names here, so a
	// resident distribution can serve any starter entrypoint — not
	// just the one-shot main().
	Entrypoints map[string]string
	// SitePart maps each allocation site to its home node.
	SitePart map[analysis.SiteKey]int
	// StaticPart maps each class with static context to the home
	// node of its ST part.
	StaticPart map[string]int
	// ClassHasRemote[k][D] reports whether node k must treat class D
	// as dependent (some D instance lives off-node).
	ClassHasRemote map[int]map[string]bool
	// ClassParts[C] is the set of nodes holding allocation sites of
	// class C (used to decide whether an async-confined call's touch
	// set is co-located).
	ClassParts map[string]map[int]bool
	// Facts carries the static facts the optimisation kinds rest on.
	Facts *analysis.Facts
	// Fusion is the access-fusion run table from analysis (nil when
	// the plan predates the pass): per method, the runs of consecutive
	// accesses the rewriter stamps with Fuse* kind bits. Carried in
	// the plan so elastic joiners stamp their programs identically.
	Fusion *analysis.Fusion
	// Adaptive marks the plan as an initial placement rather than a
	// contract: the runtime may migrate objects between nodes at run
	// time, so every allocated class is rewritten as dependent on every
	// node (all instance accesses funnel through the access path, which
	// is what makes ownership a runtime decision). Asynchronous
	// confined-call stamping is disabled, because co-location is no
	// longer a static guarantee once objects move.
	Adaptive bool
	// Replicated is the set of read-replication candidate classes
	// (nil when the plan was built without Options.Replicate). These
	// classes are marked dependent on every node so that *all* their
	// accesses — including writes on the owner — funnel through the
	// runtime's coherence layer, which is what lets a write trigger
	// replica invalidation. The set is closed under the inheritance
	// chains the rewriter's type precision works at.
	Replicated map[string]bool
	// replicatedChain is the precomputed set of class names whose
	// inheritance chain contains a Replicated member — the use-site
	// types whose accesses may be replica-served.
	replicatedChain map[string]bool
}

// CoLocated reports whether every allocation site of every class in
// touch lies on a single node: the condition under which a confined
// void call provably executes entirely on its receiver's home.
func (p *Plan) CoLocated(touch []string) bool {
	part := -1
	for _, cls := range touch {
		for n := range p.ClassParts[cls] {
			if part < 0 {
				part = n
			} else if part != n {
				return false
			}
		}
	}
	return true
}

// BuildPlan derives the plan from a partitioned ODG (vertices must
// carry Part assignments, e.g. after partition.Partition).
//
// The ExecutionStarter always runs main() on node 0 (paper §5), so if
// the partitioner assigned the main class's static context elsewhere,
// partition labels are swapped first — a pure relabeling that preserves
// the edgecut and balance.
func BuildPlan(res *analysis.Result, k int) *Plan {
	if res.MainClass != "" {
		if v, ok := res.ODG.StaticNode[res.MainClass]; ok {
			home := res.ODG.Graph.Vertex(v).Part
			if home > 0 {
				for _, vert := range res.ODG.Graph.Vertices() {
					switch vert.Part {
					case home:
						vert.Part = 0
					case 0:
						vert.Part = home
					}
				}
			}
		}
	}
	plan := &Plan{
		K:              k,
		MainClass:      res.MainClass,
		SitePart:       map[analysis.SiteKey]int{},
		StaticPart:     map[string]int{},
		ClassHasRemote: map[int]map[string]bool{},
		Facts:          res.Facts,
	}
	for n := 0; n < k; n++ {
		plan.ClassHasRemote[n] = map[string]bool{}
	}
	odg := res.ODG
	partOf := func(v int) int {
		p := odg.Graph.Vertex(v).Part
		if p < 0 {
			return 0
		}
		return p
	}
	for _, s := range odg.Sites {
		plan.SitePart[s.Key] = partOf(s.Node)
	}
	for cls, v := range odg.StaticNode {
		plan.StaticPart[cls] = partOf(v)
	}
	// A class is dependent on node k when any of its sites lives on a
	// different node (type-based approximation, as in the paper).
	classParts := map[string]map[int]bool{}
	for _, s := range odg.Sites {
		if classParts[s.Allocated] == nil {
			classParts[s.Allocated] = map[int]bool{}
		}
		classParts[s.Allocated][plan.SitePart[s.Key]] = true
	}
	for cls, parts := range classParts {
		for n := 0; n < k; n++ {
			for p := range parts {
				if p != n {
					plan.ClassHasRemote[n][cls] = true
				}
			}
		}
	}
	plan.ClassParts = classParts
	return plan
}

// collectEntrypoints fills the entrypoint table with every static,
// non-native, non-constructor method of the plan's MainClass. MJ has no
// overloading, so a name maps to exactly one descriptor.
func (p *Plan) collectEntrypoints(prog *bytecode.Program) {
	p.Entrypoints = map[string]string{}
	cf := prog.Class(p.MainClass)
	if cf == nil {
		return
	}
	for i := range cf.Methods {
		m := &cf.Methods[i]
		if m.IsEntrypoint() {
			p.Entrypoints[m.Name] = m.Desc
		}
	}
}

// EntrypointNames returns the entrypoint table's names, sorted.
func (p *Plan) EntrypointNames() []string {
	out := make([]string, 0, len(p.Entrypoints))
	for name := range p.Entrypoints {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// DependentClasses returns, for a node, the sorted list of classes that
// are rewritten to proxy accesses.
func (p *Plan) DependentClasses(node int) []string {
	var out []string
	for cls := range p.ClassHasRemote[node] {
		out = append(out, cls)
	}
	sort.Strings(out)
	return out
}

// NewDependentObjectClass synthesises the proxy class the runtime
// implements natively: a home node, the remote class name, a remote
// object id, plus the native <init>/access/staticAccess entry points.
func NewDependentObjectClass() *bytecode.ClassFile {
	cf := bytecode.NewClassFile(DependentObjectClass, "Object")
	cf.Fields = []bytecode.Field{
		{Name: "homeNode", Desc: "I"},
		{Name: "className", Desc: "T"},
		{Name: "remoteId", Desc: "J"},
	}
	cf.Methods = []bytecode.Method{
		{Flags: bytecode.AccNative, Name: "<init>", Desc: CtorDesc},
		{Flags: bytecode.AccNative, Name: "access", Desc: AccessDesc},
		{Flags: bytecode.AccNative | bytecode.AccStatic, Name: "staticAccess", Desc: StaticAccessDesc},
	}
	return cf
}

// Result is the output of rewriting for every node.
type Result struct {
	Plan *Plan
	// Nodes[k] is the rewritten program for node k.
	Nodes []*bytecode.Program
}

// markAllDependent widens the dependent-class sets for adaptive mode:
// every class with an allocation site becomes dependent on every node,
// so all instance accesses are mediated by the access path and any
// object may change homes at run time.
func (p *Plan) markAllDependent() {
	p.Adaptive = true
	for cls := range p.ClassParts {
		for n := 0; n < p.K; n++ {
			p.ClassHasRemote[n][cls] = true
		}
	}
}

// markReplicated installs the replication-candidate set: the analysis
// candidates restricted to classes the program actually allocates,
// then closed under inheritance chains (if any related allocated class
// fails the gates, the whole chain stays unreplicated — the rewriter
// cannot tell chain members apart at a use site). Replicated classes
// become dependent on every node so writes anywhere are mediated.
func (p *Plan) markReplicated(prog *bytecode.Program, ri *analysis.ReplicaIntensity) {
	set := map[string]bool{}
	for cls := range p.ClassParts {
		if ri.Candidate(cls) {
			set[cls] = true
		}
	}
	// Chain closure, iterated to a fixpoint: drop any candidate
	// related to an allocated non-candidate. Deletions cascade (losing
	// one chain member can orphan another), and the fixpoint makes the
	// result independent of map iteration order.
	for changed := true; changed; {
		changed = false
		for cls := range set {
			for other := range p.ClassParts {
				if other != cls && !set[other] && other != "Object" && isRelated(prog, cls, other) {
					delete(set, cls)
					changed = true
					break
				}
			}
		}
	}
	p.Replicated = set
	// Precompute the chain closure of use-site types served from
	// replicas, so per-site stamping is a map lookup instead of a
	// related-class scan.
	p.replicatedChain = map[string]bool{}
	for _, name := range prog.Names() {
		for rep := range set {
			if isRelated(prog, rep, name) {
				p.replicatedChain[name] = true
				break
			}
		}
	}
	for cls := range set {
		for n := 0; n < p.K; n++ {
			p.ClassHasRemote[n][cls] = true
		}
	}
}

// touchesReplicated reports whether a confined call's touch set
// intersects the replicated classes. Such calls must stay synchronous:
// a buffered asynchronous write would let a later replica-served read
// run ahead of its invalidation, and a batched replica fetch could
// stall the batch worker behind remote exchanges.
func (p *Plan) touchesReplicated(touch []string) bool {
	for _, cls := range touch {
		if p.Replicated[cls] {
			return true
		}
	}
	return false
}

// Options selects the rewriting mode. The zero value is the static
// plan-as-contract rewrite; Adaptive and Replicate compose.
type Options struct {
	// Adaptive treats the partition as an initial placement with live
	// migration (see Plan.Adaptive).
	Adaptive bool
	// Replicate stamps replication access kinds for the analysis
	// pass's read-mostly candidate classes (see Plan.Replicated). The
	// runtime protocol is enabled separately (runtime
	// Options.Replicate / autodist RunOptions.Replicate); without it
	// the stamped kinds degrade to plain synchronous accesses.
	Replicate bool
	// NoFuse omits the fusion stamps entirely, producing the
	// pre-fusion bytecode. Stamped sites already execute identically
	// when the runtime's fusion switch is off, so this is not needed
	// for A/B runs — it exists as the baseline for tests that pin the
	// fusion-off wire stream byte-for-byte against an unstamped build.
	NoFuse bool
}

// Rewrite produces the per-node programs. The input program is not
// modified.
func Rewrite(p *bytecode.Program, res *analysis.Result, k int) (*Result, error) {
	return RewriteWith(p, res, k, Options{})
}

// RewriteAdaptive produces per-node programs for the adaptive runtime:
// the partition is only the initial placement, every allocated class is
// rewritten as dependent everywhere, and no asynchronous access kinds
// are stamped (see Plan.Adaptive).
func RewriteAdaptive(p *bytecode.Program, res *analysis.Result, k int) (*Result, error) {
	return RewriteWith(p, res, k, Options{Adaptive: true})
}

// RewriteWith produces the per-node programs under the given mode
// options. The input program is not modified.
func RewriteWith(p *bytecode.Program, res *analysis.Result, k int, opts Options) (*Result, error) {
	plan := BuildPlan(res, k)
	plan.collectEntrypoints(p)
	if !opts.NoFuse {
		plan.Fusion = res.Fusion
	}
	if opts.Adaptive {
		plan.markAllDependent()
	}
	if opts.Replicate {
		plan.markReplicated(p, res.Replication)
	}
	out := &Result{Plan: plan, Nodes: make([]*bytecode.Program, k)}
	for node := 0; node < k; node++ {
		np, err := RewriteForNode(p, plan, node)
		if err != nil {
			return nil, fmt.Errorf("rewrite: node %d: %w", node, err)
		}
		out.Nodes[node] = np
	}
	return out, nil
}

// RewriteForNode clones the program and rewrites every class's methods
// for execution on the given node.
func RewriteForNode(p *bytecode.Program, plan *Plan, node int) (*bytecode.Program, error) {
	np := p.Clone()
	np.Add(NewDependentObjectClass())
	dep := plan.ClassHasRemote[node]
	// Inject a native local-dispatch access method at the hierarchy
	// root, so rewritten call sites work when the receiver happens to
	// be local (type-based imprecision; see DESIGN.md). Every class
	// inherits it through virtual lookup.
	if len(dep) > 0 {
		if obj := np.Class("Object"); obj != nil && obj.Method("access", AccessDesc) == nil {
			obj.Methods = append(obj.Methods, bytecode.Method{
				Flags: bytecode.AccNative | bytecode.AccSynthetic,
				Name:  "access", Desc: AccessDesc,
			})
		}
	}
	for _, cf := range np.Classes() {
		if cf.Name == DependentObjectClass {
			continue
		}
		for i := range cf.Methods {
			m := &cf.Methods[i]
			if m.IsNative() || len(m.Code) == 0 {
				continue
			}
			rw := &methodRewriter{
				prog: p, plan: plan, node: node,
				cf: cf, m: m,
			}
			if err := rw.rewrite(); err != nil {
				return nil, fmt.Errorf("%s.%s: %w", cf.Name, m.Name, err)
			}
		}
	}
	if err := bytecode.VerifyProgram(np); err != nil {
		return nil, fmt.Errorf("rewritten program invalid: %w", err)
	}
	return np, nil
}

// methodRewriter rebuilds one method's code with communication calls.
type methodRewriter struct {
	prog *bytecode.Program
	plan *Plan
	node int
	cf   *bytecode.ClassFile
	m    *bytecode.Method

	out      []bytecode.Instr
	mapping  []int // old index → new index
	nextTemp int

	// fuse maps an original instruction index to its fused-run entry,
	// for the runs that validated on this node (see buildFuseMap).
	fuse map[int]*fuseRef
}

// fuseRef locates one access site inside a validated fused run.
type fuseRef struct {
	run *analysis.FusedRun
	idx int
}

// last reports whether the site is the run's final access.
func (fs *fuseRef) last() bool { return fs.idx == len(fs.run.Entries)-1 }

func (rw *methodRewriter) emit(in bytecode.Instr) {
	rw.out = append(rw.out, in)
}

func (rw *methodRewriter) temp() int32 {
	t := rw.nextTemp
	rw.nextTemp++
	return int32(t)
}

// isDependent reports whether accesses through static type cls must be
// proxied on this node: true when cls itself, any subclass of cls, or
// any superclass of cls has instances on another node. The subclass
// direction matters because a call through a declared supertype
// (e.g. Animal.speak on a remote Dog) must also be rewritten.
func (rw *methodRewriter) isDependent(cls string) bool {
	for dep := range rw.plan.ClassHasRemote[rw.node] {
		if isRelated(rw.prog, dep, cls) {
			return true
		}
	}
	return false
}

// isReplicated reports whether accesses through static type cls may be
// served from read replicas: some replication-candidate class lies on
// cls's inheritance chain (the candidate set is chain-closed, so this
// is equivalent to the whole chain qualifying).
func (rw *methodRewriter) isReplicated(cls string) bool {
	return rw.plan.replicatedChain[cls]
}

// isRelated reports whether a and b are on the same inheritance chain.
func isRelated(p *bytecode.Program, a, b string) bool {
	return isSubclassOf(p, a, b) || isSubclassOf(p, b, a)
}

func isSubclassOf(p *bytecode.Program, sub, super string) bool {
	for c := sub; c != ""; {
		if c == super {
			return true
		}
		cf := p.Class(c)
		if cf == nil {
			return false
		}
		c = cf.Super
	}
	return false
}

// staticHome returns the home node for a class's static part.
func (rw *methodRewriter) staticHome(cls string) int {
	if n, ok := rw.plan.StaticPart[cls]; ok {
		return n
	}
	return 0
}

func loadOpFor(desc string) bytecode.Op {
	switch bytecode.DescKind(desc) {
	case bytecode.DescFloat:
		return bytecode.FLOAD
	case bytecode.DescClass, bytecode.DescArray, bytecode.DescString:
		return bytecode.ALOAD
	default:
		return bytecode.ILOAD
	}
}

func storeOpFor(desc string) bytecode.Op {
	switch bytecode.DescKind(desc) {
	case bytecode.DescFloat:
		return bytecode.FSTORE
	case bytecode.DescClass, bytecode.DescArray, bytecode.DescString:
		return bytecode.ASTORE
	default:
		return bytecode.ISTORE
	}
}

// packArgs pops len(descs) stack values (typed per descs, pushed left
// to right so the rightmost is on top) into a fresh Object[] stored in
// a temp slot, which is returned.
func (rw *methodRewriter) packArgs(descs []string) int32 {
	pool := rw.cf.Pool
	n := len(descs)
	temps := make([]int32, n)
	for i := n - 1; i >= 0; i-- {
		temps[i] = rw.temp()
		rw.emit(bytecode.Instr{Op: storeOpFor(descs[i]), A: temps[i]})
	}
	arrT := rw.temp()
	rw.emit(bytecode.Instr{Op: bytecode.LDC, A: int32(pool.AddInt(int64(n)))})
	rw.emit(bytecode.Instr{Op: bytecode.NEWARRAY, A: int32(pool.AddUtf8("LObject;"))})
	rw.emit(bytecode.Instr{Op: bytecode.ASTORE, A: arrT})
	for i := 0; i < n; i++ {
		rw.emit(bytecode.Instr{Op: bytecode.ALOAD, A: arrT})
		rw.emit(bytecode.Instr{Op: bytecode.LDC, A: int32(pool.AddInt(int64(i)))})
		rw.emit(bytecode.Instr{Op: loadOpFor(descs[i]), A: temps[i]})
		rw.emit(bytecode.Instr{Op: bytecode.AASTORE})
	}
	return arrT
}

// buildFuseMap indexes this method's fused runs by access-site
// instruction index, keeping only runs that are valid on this node:
// every entry must actually rewrite to a proxied access here (a single
// locally-served entry would execute out of order with the deferred
// remainder), and every statics class read inside the run must be
// homed here (so the read never becomes a remote exchange between
// deferred sites).
func (rw *methodRewriter) buildFuseMap() {
	if rw.plan.Fusion == nil {
		return
	}
	mid := analysis.MethodID{Class: rw.cf.Name, Name: rw.m.Name, Desc: rw.m.Desc}
	runs := rw.plan.Fusion.Runs[mid]
	for ri := range runs {
		run := &runs[ri]
		if !rw.runValid(run) {
			continue
		}
		if rw.fuse == nil {
			rw.fuse = map[int]*fuseRef{}
		}
		for idx := range run.Entries {
			rw.fuse[run.Entries[idx].PC] = &fuseRef{run: run, idx: idx}
		}
	}
}

func (rw *methodRewriter) runValid(run *analysis.FusedRun) bool {
	for _, cls := range run.Statics {
		if rw.staticHome(cls) != rw.node {
			return false
		}
	}
	for _, e := range run.Entries {
		if e.PC >= len(rw.m.Code) {
			return false
		}
		in := rw.m.Code[e.PC]
		switch in.Op {
		case bytecode.GETFIELD, bytecode.PUTFIELD, bytecode.INVOKEVIRTUAL:
			cls, _, _ := rw.cf.Pool.Ref(uint16(in.A))
			if !rw.isDependent(cls) {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// fusedKind stamps the site's fusion bits onto its access kind.
func fusedKind(kind int64, fs *fuseRef) int64 {
	if fs == nil {
		return kind
	}
	if fs.last() {
		kind |= FuseLast
	} else {
		kind |= FuseEnq
	}
	if fs.run.Entries[fs.idx].Pure {
		kind |= FusePure
	}
	return kind
}

func (rw *methodRewriter) rewrite() error {
	code := rw.m.Code
	rw.nextTemp = rw.m.MaxLocals
	rw.mapping = make([]int, len(code)+1)
	rw.buildFuseMap()
	pool := rw.cf.Pool

	ldcInt := func(v int64) {
		rw.emit(bytecode.Instr{Op: bytecode.LDC, A: int32(pool.AddInt(v))})
	}
	ldcStr := func(s string) {
		rw.emit(bytecode.Instr{Op: bytecode.LDC, A: int32(pool.AddUtf8(s))})
	}

	for i, in := range code {
		rw.mapping[i] = len(rw.out)
		switch in.Op {
		case bytecode.NEW:
			cls := pool.ClassName(uint16(in.A))
			key := analysis.SiteKey{Class: rw.cf.Name, Name: rw.m.Name, Desc: rw.m.Desc, PC: i}
			home, known := rw.plan.SitePart[key]
			if !known || home == rw.node || cls == DependentObjectClass {
				rw.emit(in)
				continue
			}
			// Remote allocation (Figure 9): defer everything to the
			// matching INVOKESPECIAL, which we rewrite when it names
			// this class's constructor. Here we create the proxy
			// object instead of the real one.
			rw.emit(bytecode.Instr{Op: bytecode.NEW, A: int32(pool.AddClass(DependentObjectClass))})

		case bytecode.INVOKESPECIAL:
			cls, name, desc := pool.Ref(uint16(in.A))
			if name != "<init>" {
				rw.emit(in)
				continue
			}
			// Find whether this constructor call corresponds to a
			// remote NEW: scan backwards in the ORIGINAL code for
			// the matching NEW of cls (nearest preceding unmatched
			// one). A simpler, sound rule: the site is remote iff
			// the class is dependent AND the nearest preceding NEW
			// of cls in this method maps to a remote partition.
			siteIdx := rw.findMatchingNew(i, cls)
			if siteIdx < 0 {
				rw.emit(in)
				continue
			}
			key := analysis.SiteKey{Class: rw.cf.Name, Name: rw.m.Name, Desc: rw.m.Desc, PC: siteIdx}
			home, known := rw.plan.SitePart[key]
			if !known || home == rw.node {
				rw.emit(in)
				continue
			}
			// Stack here: DO, DO, ctor-args… (Figure 9's layout).
			params, _, err := bytecode.ParseMethodDesc(desc)
			if err != nil {
				return err
			}
			arrT := rw.packArgs(params)
			ldcInt(int64(home)) // location of the real object
			ldcStr(cls)         // class name
			rw.emit(bytecode.Instr{Op: bytecode.ALOAD, A: arrT})
			mref := pool.AddMethodRef(DependentObjectClass, "<init>", CtorDesc)
			rw.emit(bytecode.Instr{Op: bytecode.INVOKESPECIAL, A: int32(mref)})

		case bytecode.INVOKEVIRTUAL:
			cls, name, desc := pool.Ref(uint16(in.A))
			if !rw.isDependent(cls) {
				rw.emit(in)
				continue
			}
			// Figure 8: aload receiver stays; pack args; push access
			// kind and member; call DependentObject.access.
			params, ret, err := bytecode.ParseMethodDesc(desc)
			if err != nil {
				return err
			}
			arrT := rw.packArgs(params)
			kind := int64(InvokeMethodHasReturn)
			if ret == "V" {
				kind = InvokeMethodVoid
				// A confined void call whose touch set is co-located
				// provably completes on the receiver's home node, so
				// the runtime may fire it asynchronously and batch it.
				// Under an adaptive plan co-location is only the
				// initial state — migration could strand the touch set
				// — so the call stays synchronous. A touch set reaching
				// a replicated class also stays synchronous, so its
				// writes run the invalidation protocol inside the
				// caller's request (see Plan.touchesReplicated).
				if !rw.plan.Adaptive {
					if touch, ok := rw.plan.Facts.AsyncConfined(cls, name, desc); ok &&
						rw.plan.CoLocated(touch) && !rw.plan.touchesReplicated(touch) {
						kind = InvokeMethodVoidAsync
					}
				}
			} else if rw.isReplicated(cls) && rw.plan.Facts.ReplicaRead(cls, name, desc) {
				// A proven read-only call on a replication candidate
				// may be served by executing the method on a local
				// replica snapshot.
				kind = InvokeReplicaRead
			}
			fs := rw.fuse[i]
			ldcInt(fusedKind(kind, fs))
			ldcStr(name + ":" + desc)
			rw.emit(bytecode.Instr{Op: bytecode.ALOAD, A: arrT})
			mref := pool.AddMethodRef(DependentObjectClass, "access", AccessDesc)
			rw.emit(bytecode.Instr{Op: bytecode.INVOKEVIRTUAL, A: int32(mref)})
			if fs != nil && fs.last() {
				rw.emitFusedEpilogue(fs, ret)
			} else {
				rw.castOrDiscard(ret)
			}

		case bytecode.GETFIELD:
			cls, name, desc := pool.Ref(uint16(in.A))
			if !rw.isDependent(cls) {
				rw.emit(in)
				continue
			}
			fieldKind := int64(GetField)
			// Write-once fields never change after construction, so
			// the proxy may serve repeat reads from its cache; mutable
			// fields of replication candidates are served from a
			// replica kept fresh by invalidation instead.
			if rw.plan.Facts.FieldImmutable(cls, name, desc) {
				fieldKind = GetFieldCached
			} else if rw.isReplicated(cls) {
				fieldKind = GetFieldReplicated
			}
			fs := rw.fuse[i]
			ldcInt(fusedKind(fieldKind, fs))
			ldcStr(name)
			rw.emit(bytecode.Instr{Op: bytecode.ACONSTNULL}) // no args
			mref := pool.AddMethodRef(DependentObjectClass, "access", AccessDesc)
			rw.emit(bytecode.Instr{Op: bytecode.INVOKEVIRTUAL, A: int32(mref)})
			if fs != nil && fs.last() {
				rw.emitFusedEpilogue(fs, desc)
			} else {
				rw.castOrDiscard(desc)
			}

		case bytecode.PUTFIELD:
			cls, name, desc := pool.Ref(uint16(in.A))
			if !rw.isDependent(cls) {
				rw.emit(in)
				continue
			}
			// Stack: recv, value. Pack the value as the single arg.
			arrT := rw.packArgs([]string{desc})
			fs := rw.fuse[i]
			ldcInt(fusedKind(PutField, fs))
			ldcStr(name)
			rw.emit(bytecode.Instr{Op: bytecode.ALOAD, A: arrT})
			mref := pool.AddMethodRef(DependentObjectClass, "access", AccessDesc)
			rw.emit(bytecode.Instr{Op: bytecode.INVOKEVIRTUAL, A: int32(mref)})
			if fs != nil && fs.last() {
				rw.emitFusedEpilogue(fs, "")
			} else {
				rw.emit(bytecode.Instr{Op: bytecode.POP})
			}

		case bytecode.GETSTATIC:
			cls, name, desc := pool.Ref(uint16(in.A))
			home := rw.staticHome(cls)
			if home == rw.node {
				rw.emit(in)
				continue
			}
			ldcInt(int64(home))
			ldcStr(cls)
			ldcInt(GetStatic)
			ldcStr(name)
			rw.emit(bytecode.Instr{Op: bytecode.ACONSTNULL})
			mref := pool.AddMethodRef(DependentObjectClass, "staticAccess", StaticAccessDesc)
			rw.emit(bytecode.Instr{Op: bytecode.INVOKESTATIC, A: int32(mref)})
			rw.castOrDiscard(desc)

		case bytecode.PUTSTATIC:
			cls, name, desc := pool.Ref(uint16(in.A))
			home := rw.staticHome(cls)
			if home == rw.node {
				rw.emit(in)
				continue
			}
			arrT := rw.packArgs([]string{desc})
			ldcInt(int64(home))
			ldcStr(cls)
			ldcInt(PutStatic)
			ldcStr(name)
			rw.emit(bytecode.Instr{Op: bytecode.ALOAD, A: arrT})
			mref := pool.AddMethodRef(DependentObjectClass, "staticAccess", StaticAccessDesc)
			rw.emit(bytecode.Instr{Op: bytecode.INVOKESTATIC, A: int32(mref)})
			rw.emit(bytecode.Instr{Op: bytecode.POP})

		case bytecode.CHECKCAST:
			cls := pool.ClassName(uint16(in.A))
			if rw.isDependent(cls) {
				// The value may be a proxy at runtime; the VM's
				// class check would reject it. Drop the check
				// (type-based rewriting cannot preserve it).
				rw.emit(bytecode.Instr{Op: bytecode.NOP})
				continue
			}
			rw.emit(in)

		default:
			rw.emit(in)
		}
	}
	rw.mapping[len(code)] = len(rw.out)

	// Remap branch targets.
	for idx := range rw.out {
		in := rw.out[idx]
		if t := in.Target(); t >= 0 && rw.isOriginalBranch(idx) {
			rw.out[idx] = in.WithTarget(rw.mapping[t])
		}
	}
	rw.m.Code = rw.out
	rw.m.MaxLocals = rw.nextTemp
	return nil
}

// isOriginalBranch reports whether the instruction at new index idx was
// copied from the original code (emitted sequences never contain
// branches, so any branch is original).
func (rw *methodRewriter) isOriginalBranch(idx int) bool {
	return rw.out[idx].Op.IsBranch()
}

// emitFusedEpilogue rewrites the tail of a fused run's LAST access.
// The access call just emitted returns an Object[] with one element
// per run entry (FuseLast's contract), so the epilogue stores each
// earlier stored entry's result into the local slot the original code
// targeted — those slots held placeholders until this moment — and
// then leaves the last access's own value on the stack for its
// original consumer (or nothing, for a void/put last access).
func (rw *methodRewriter) emitFusedEpilogue(fs *fuseRef, ret string) {
	pool := rw.cf.Pool
	arrT := rw.temp()
	rw.emit(bytecode.Instr{Op: bytecode.ASTORE, A: arrT})
	n := len(fs.run.Entries)
	for j := 0; j < n-1; j++ {
		e := fs.run.Entries[j]
		if e.StorePC < 0 {
			continue
		}
		rw.emit(bytecode.Instr{Op: bytecode.ALOAD, A: arrT})
		rw.emit(bytecode.Instr{Op: bytecode.LDC, A: int32(pool.AddInt(int64(j)))})
		rw.emit(bytecode.Instr{Op: bytecode.AALOAD})
		rw.emitRefCast(e.Desc)
		rw.emit(bytecode.Instr{Op: storeOpFor(e.Desc), A: int32(e.StoreSlot)})
	}
	if ret != "" && ret != "V" {
		rw.emit(bytecode.Instr{Op: bytecode.ALOAD, A: arrT})
		rw.emit(bytecode.Instr{Op: bytecode.LDC, A: int32(pool.AddInt(int64(n - 1)))})
		rw.emit(bytecode.Instr{Op: bytecode.AALOAD})
		rw.castOrDiscard(ret)
	}
}

// emitRefCast is castOrDiscard's cast step alone (no void handling).
func (rw *methodRewriter) emitRefCast(desc string) {
	if bytecode.DescKind(desc) == bytecode.DescClass {
		cls := bytecode.ClassOf(desc)
		if !rw.isDependent(cls) && cls != "Object" {
			rw.emit(bytecode.Instr{Op: bytecode.CHECKCAST, A: int32(rw.cf.Pool.AddClass(cls))})
		}
	}
}

// castOrDiscard emits the post-access fixup: POP for void, CHECKCAST
// for reference returns that are not dependent classes (Figure 8's
// "checkcast Integer" step; primitives need nothing in this VM).
func (rw *methodRewriter) castOrDiscard(ret string) {
	switch {
	case ret == "V":
		rw.emit(bytecode.Instr{Op: bytecode.POP})
	case bytecode.DescKind(ret) == bytecode.DescClass:
		cls := bytecode.ClassOf(ret)
		if !rw.isDependent(cls) && cls != "Object" {
			rw.emit(bytecode.Instr{Op: bytecode.CHECKCAST, A: int32(rw.cf.Pool.AddClass(cls))})
		}
	}
}

// findMatchingNew locates the NEW instruction whose object the
// INVOKESPECIAL at ctorIdx initialises, by scanning backwards for the
// nearest NEW of the class with no intervening INVOKESPECIAL for the
// same class (nested allocations of the same class cannot interleave
// in compiler-generated code).
func (rw *methodRewriter) findMatchingNew(ctorIdx int, cls string) int {
	depth := 0
	for i := ctorIdx - 1; i >= 0; i-- {
		in := rw.m.Code[i]
		if in.Op == bytecode.INVOKESPECIAL {
			c, name, _ := rw.cf.Pool.Ref(uint16(in.A))
			if c == cls && name == "<init>" {
				depth++
			}
		}
		if in.Op == bytecode.NEW && rw.cf.Pool.ClassName(uint16(in.A)) == cls {
			if depth == 0 {
				return i
			}
			depth--
		}
	}
	return -1
}
