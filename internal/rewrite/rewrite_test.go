package rewrite

import (
	"strings"
	"testing"

	"autodist/internal/analysis"
	"autodist/internal/bytecode"
	"autodist/internal/compile"
	"autodist/internal/partition"
)

const bankSource = `
class Account {
	int id;
	int savings;
	Account(int id, int savings) { this.id = id; this.savings = savings; }
	int getId() { return this.id; }
	int getSavings() { return this.savings; }
	void setBalance(int b) { this.savings = b; }
}
class Bank {
	Vector accounts;
	Bank() { this.accounts = new Vector(); }
	void openAccount(Account a) { this.accounts.add(a); }
	Account getCustomer(int id) {
		for (int i = 0; i < this.accounts.size(); i++) {
			Account a = (Account) this.accounts.get(i);
			if (a.getId() == id) { return a; }
		}
		return null;
	}
	static void main() {
		Bank b = new Bank();
		Account account = new Account(7, 100);
		b.openAccount(account);
		int s = account.getSavings();
		System.println("" + s);
	}
}
`

// prep compiles, analyses and partitions the bank program two ways.
func prep(t *testing.T) (*bytecode.Program, *analysis.Result, *Plan) {
	t.Helper()
	bp, _, err := compile.CompileSource(bankSource)
	if err != nil {
		t.Fatal(err)
	}
	res, err := analysis.Analyze(bp)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := partition.Partition(res.ODG.Graph, partition.Options{K: 2, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	plan := BuildPlan(res, 2)
	return bp, res, plan
}

func TestPlanCoversAllSitesAndStatics(t *testing.T) {
	_, res, plan := prep(t)
	if len(plan.SitePart) != len(res.ODG.Sites) {
		t.Errorf("plan has %d sites, ODG %d", len(plan.SitePart), len(res.ODG.Sites))
	}
	for key, p := range plan.SitePart {
		if p < 0 || p >= 2 {
			t.Errorf("site %v on bad node %d", key, p)
		}
	}
	if _, ok := plan.StaticPart["Bank"]; !ok {
		t.Error("ST_Bank missing from plan")
	}
}

func TestRewriteProducesVerifiablePrograms(t *testing.T) {
	bp, res, _ := prep(t)
	out, err := Rewrite(bp, res, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Nodes) != 2 {
		t.Fatalf("got %d node programs", len(out.Nodes))
	}
	for k, np := range out.Nodes {
		if err := bytecode.VerifyProgram(np); err != nil {
			t.Errorf("node %d program invalid: %v", k, err)
		}
		if np.Class(DependentObjectClass) == nil {
			t.Errorf("node %d missing DependentObject", k)
		}
	}
	// The original program must be untouched.
	for _, cf := range bp.Classes() {
		if cf.Name == DependentObjectClass {
			t.Error("original program polluted with DependentObject")
		}
	}
}

// forcePlan builds a plan putting every Account site on node 1 and
// everything else on node 0 — a deterministic layout for shape tests.
func forcePlan(res *analysis.Result, k int) *Plan {
	odg := res.ODG
	for _, s := range odg.Sites {
		part := 0
		if s.Allocated == "Account" {
			part = 1
		}
		odg.Graph.Vertex(s.Node).Part = part
	}
	for _, v := range odg.StaticNode {
		odg.Graph.Vertex(v).Part = 0
	}
	return BuildPlan(res, k)
}

func TestFigure9NewTransformShape(t *testing.T) {
	bp, res, _ := prep(t)
	plan := forcePlan(res, 2)
	np, err := RewriteForNode(bp, plan, 0)
	if err != nil {
		t.Fatal(err)
	}
	main := np.Class("Bank").Method("main", "()V")
	dis := bytecode.DisasmMethod(np.Class("Bank"), main)
	// Figure 9's elements: new DependentObject, the location constant,
	// the class name, and the DependentObject constructor call.
	for _, want := range []string{
		"new DependentObject",
		`ldc "Account"`,
		"invokespecial DependentObject.<init>:(IT[LObject;)V",
		`ldc 1 (int)`, // location of Account: node 1
	} {
		if !strings.Contains(dis, want) {
			t.Errorf("rewritten main missing %q:\n%s", want, dis)
		}
	}
	// The Bank allocation stays local on node 0.
	if !strings.Contains(dis, "new Bank") {
		t.Errorf("local Bank allocation was rewritten:\n%s", dis)
	}
}

func TestFigure8InvokeTransformShape(t *testing.T) {
	bp, res, _ := prep(t)
	plan := forcePlan(res, 2)
	np, err := RewriteForNode(bp, plan, 0)
	if err != nil {
		t.Fatal(err)
	}
	main := np.Class("Bank").Method("main", "()V")
	dis := bytecode.DisasmMethod(np.Class("Bank"), main)
	// Figure 8: access-kind constant, member name, invokevirtual
	// DependentObject.access.
	for _, want := range []string{
		`ldc "getSavings:()I"`,
		"invokevirtual DependentObject.access:(IT[LObject;)LObject;",
	} {
		if !strings.Contains(dis, want) {
			t.Errorf("rewritten main missing %q:\n%s", want, dis)
		}
	}
	if strings.Contains(dis, "invokevirtual Account.getSavings") {
		t.Errorf("direct dependent-class invoke survived:\n%s", dis)
	}
}

func TestDependentClassesPerNode(t *testing.T) {
	_, res, _ := prep(t)
	plan := forcePlan(res, 2)
	// Node 0: Account instances live on node 1 → Account dependent.
	deps0 := plan.DependentClasses(0)
	found := false
	for _, c := range deps0 {
		if c == "Account" {
			found = true
		}
	}
	if !found {
		t.Errorf("node 0 dependent classes = %v, want Account", deps0)
	}
	// Node 1: Bank and Vector live on node 0 → dependent there.
	deps1 := plan.DependentClasses(1)
	wantSet := map[string]bool{}
	for _, c := range deps1 {
		wantSet[c] = true
	}
	if !wantSet["Bank"] || !wantSet["Vector"] {
		t.Errorf("node 1 dependent classes = %v, want Bank and Vector", deps1)
	}
}

func TestSyntheticAccessInjected(t *testing.T) {
	bp, res, _ := prep(t)
	plan := forcePlan(res, 2)
	np, err := RewriteForNode(bp, plan, 0)
	if err != nil {
		t.Fatal(err)
	}
	// The local-dispatch access method is injected at the root so
	// every class inherits it.
	acc := np.Class("Object").Method("access", AccessDesc)
	if acc == nil || !acc.IsNative() {
		t.Error("Object lacks synthetic native access on node 0")
	}
}

func TestBranchTargetsRemappedCorrectly(t *testing.T) {
	// getCustomer contains a loop plus dependent-class calls; after
	// rewriting, the method must still verify (targets remapped) —
	// and the loop structure must survive.
	bp, res, _ := prep(t)
	plan := forcePlan(res, 2)
	np, err := RewriteForNode(bp, plan, 0)
	if err != nil {
		t.Fatal(err)
	}
	m := np.Class("Bank").Method("getCustomer", "(I)LAccount;")
	if _, err := bytecode.VerifyMethod(np.Class("Bank"), m); err != nil {
		t.Fatalf("rewritten getCustomer fails verification: %v", err)
	}
	hasBackBranch := false
	for i, in := range m.Code {
		if t := in.Target(); t >= 0 && t <= i {
			hasBackBranch = true
		}
	}
	if !hasBackBranch {
		t.Error("loop lost after rewriting")
	}
}

func TestCheckcastOfDependentClassDropped(t *testing.T) {
	bp, res, _ := prep(t)
	plan := forcePlan(res, 2)
	np, err := RewriteForNode(bp, plan, 0)
	if err != nil {
		t.Fatal(err)
	}
	m := np.Class("Bank").Method("getCustomer", "(I)LAccount;")
	dis := bytecode.DisasmMethod(np.Class("Bank"), m)
	if strings.Contains(dis, "checkcast Account") {
		t.Errorf("checkcast of dependent class Account survived:\n%s", dis)
	}
}

func TestSingleNodeRewriteIsIdentityModuloProxyClass(t *testing.T) {
	bp, res, _ := prep(t)
	// 1-way partition: everything on node 0, nothing dependent.
	for _, v := range res.ODG.Graph.Vertices() {
		v.Part = 0
	}
	plan := BuildPlan(res, 1)
	np, err := RewriteForNode(bp, plan, 0)
	if err != nil {
		t.Fatal(err)
	}
	orig := bp.Class("Bank").Method("main", "()V")
	got := np.Class("Bank").Method("main", "()V")
	if len(orig.Code) != len(got.Code) {
		t.Errorf("1-way rewrite changed code length: %d → %d", len(orig.Code), len(got.Code))
	}
}

func TestOptimizationKindsStamped(t *testing.T) {
	// The facts pass plus a co-locating plan must stamp GetFieldCached
	// for write-once field reads and InvokeMethodVoidAsync for
	// confined void calls; a mutable field read stays GetField.
	src := `
class Conf {
	int size;
	Conf(int s) { this.size = s; }
}
class Counter {
	int v;
	void bump(int n) { this.v += n; }
}
class Main {
	static void main() {
		Conf c = new Conf(4);
		Counter k = new Counter();
		k.bump(c.size);
		System.println("" + (c.size + k.v));
	}
}`
	bp, _, err := compile.CompileSource(src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := analysis.Analyze(bp)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range res.ODG.Graph.Vertices() {
		v.Part = 0
	}
	for _, s := range res.ODG.Sites {
		if s.Allocated == "Conf" || s.Allocated == "Counter" {
			res.ODG.Graph.Vertex(s.Node).Part = 1
		}
	}
	plan := BuildPlan(res, 2)
	if plan.Facts == nil {
		t.Fatal("BuildPlan did not adopt analysis facts")
	}
	np, err := RewriteForNode(bp, plan, 0)
	if err != nil {
		t.Fatal(err)
	}
	kinds := map[int64]bool{}
	cf := np.Class("Main")
	m := cf.Method("main", "()V")
	for _, in := range m.Code {
		if in.Op == bytecode.LDC && cf.Pool.Entry(uint16(in.A)).Tag == bytecode.TagInt {
			kinds[cf.Pool.Entry(uint16(in.A)).Int] = true
		}
	}
	if !kinds[GetFieldCached] {
		t.Errorf("no GetFieldCached access stamped in rewritten main (constants seen: %v)", kinds)
	}
	if !kinds[InvokeMethodVoidAsync] {
		t.Errorf("no InvokeMethodVoidAsync access stamped in rewritten main (constants seen: %v)", kinds)
	}

	// Split the touch set across nodes: the async stamp must vanish.
	if plan.CoLocated([]string{"Conf", "Counter"}) != true {
		t.Error("expected Conf+Counter co-located in this plan")
	}
	for _, s := range res.ODG.Sites {
		if s.Allocated == "Counter" {
			res.ODG.Graph.Vertex(s.Node).Part = 0
		}
	}
	plan2 := BuildPlan(res, 2)
	if plan2.CoLocated([]string{"Conf", "Counter"}) {
		t.Error("Conf and Counter must not report co-located after the split")
	}
}

func TestAdaptivePlanIsInitialPlacementNotContract(t *testing.T) {
	bp, res, _ := prep(t)
	rw, err := RewriteAdaptive(bp, res, 2)
	if err != nil {
		t.Fatal(err)
	}
	plan := rw.Plan
	if !plan.Adaptive {
		t.Fatal("RewriteAdaptive produced a non-adaptive plan")
	}
	// Every allocated class must be dependent on every node, so all
	// instance accesses are mediated and ownership can change at run
	// time.
	for cls := range plan.ClassParts {
		for node := 0; node < plan.K; node++ {
			if !plan.ClassHasRemote[node][cls] {
				t.Errorf("class %s not dependent on node %d under adaptive plan", cls, node)
			}
		}
	}
	// The rewritten programs must still verify.
	for i, np := range rw.Nodes {
		if err := bytecode.VerifyProgram(np); err != nil {
			t.Errorf("adaptive node %d program invalid: %v", i, err)
		}
	}
}

func TestAdaptivePlanStampsNoAsyncKinds(t *testing.T) {
	// Migration voids the static co-location proof, so adaptive
	// rewrites must never stamp InvokeMethodVoidAsync — but write-once
	// caching (location-independent) stays.
	src := `
class Conf {
	int size;
	Conf(int s) { this.size = s; }
}
class Counter {
	int v;
	void bump(int n) { this.v += n; }
}
class Main {
	static void main() {
		Conf c = new Conf(4);
		Counter k = new Counter();
		k.bump(c.size);
		System.println("" + (c.size + k.v));
	}
}`
	bp, _, err := compile.CompileSource(src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := analysis.Analyze(bp)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range res.ODG.Graph.Vertices() {
		v.Part = 0
	}
	for _, s := range res.ODG.Sites {
		if s.Allocated == "Conf" || s.Allocated == "Counter" {
			res.ODG.Graph.Vertex(s.Node).Part = 1
		}
	}
	rw, err := RewriteAdaptive(bp, res, 2)
	if err != nil {
		t.Fatal(err)
	}
	// An access call site is emitted as: LDC kind; LDC member; args;
	// INVOKEVIRTUAL DependentObject.access — so the kind constant sits
	// three instructions before the invoke.
	for node, np := range rw.Nodes {
		for _, cf := range np.Classes() {
			for i := range cf.Methods {
				m := &cf.Methods[i]
				for j, in := range m.Code {
					if in.Op != bytecode.INVOKEVIRTUAL || j < 3 {
						continue
					}
					cls, name, _ := cf.Pool.Ref(uint16(in.A))
					if cls != DependentObjectClass || name != "access" {
						continue
					}
					kin := m.Code[j-3]
					if kin.Op == bytecode.LDC && cf.Pool.Entry(uint16(kin.A)).Tag == bytecode.TagInt &&
						cf.Pool.Entry(uint16(kin.A)).Int == InvokeMethodVoidAsync {
						t.Errorf("node %d: %s.%s stamps InvokeMethodVoidAsync under adaptive plan", node, cf.Name, m.Name)
					}
				}
			}
		}
	}
	np, err := RewriteForNode(bp, rw.Plan, 0)
	if err != nil {
		t.Fatal(err)
	}
	cf := np.Class("Main")
	m := cf.Method("main", "()V")
	sawCached := false
	for _, in := range m.Code {
		if in.Op == bytecode.LDC && cf.Pool.Entry(uint16(in.A)).Tag == bytecode.TagInt &&
			cf.Pool.Entry(uint16(in.A)).Int == GetFieldCached {
			sawCached = true
		}
	}
	if !sawCached {
		t.Error("write-once caching lost under adaptive plan")
	}
}

// TestEntrypointTable: RewriteWith must publish every static method of
// the main class as an invocable entrypoint, with its descriptor, and
// nothing else.
func TestEntrypointTable(t *testing.T) {
	src := `
class Helper { int id; Helper(int id) { this.id = id; } int get() { return this.id; } }
class Main {
	static Helper h;
	static void main() { Main.h = new Helper(3); }
	static int lookup(int unused) { return Main.h.get(); }
	static void touch() { Main.h.get(); }
	int instanceMethod() { return 1; }
}
`
	bp, _, err := compile.CompileSource(src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := analysis.Analyze(bp)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := partition.Partition(res.ODG.Graph, partition.Options{K: 2, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	rw, err := Rewrite(bp, res, 2)
	if err != nil {
		t.Fatal(err)
	}
	p := rw.Plan
	if p.MainClass != "Main" {
		t.Fatalf("plan.MainClass = %q, want Main", p.MainClass)
	}
	want := map[string]string{
		"main":   "()V",
		"lookup": "(I)I",
		"touch":  "()V",
	}
	if len(p.Entrypoints) != len(want) {
		t.Fatalf("Entrypoints = %v, want %v", p.Entrypoints, want)
	}
	for name, desc := range want {
		if p.Entrypoints[name] != desc {
			t.Errorf("Entrypoints[%q] = %q, want %q", name, p.Entrypoints[name], desc)
		}
	}
	if got := p.EntrypointNames(); strings.Join(got, " ") != "lookup main touch" {
		t.Errorf("EntrypointNames() = %v", got)
	}
	// Instance methods and constructors must not leak into the table.
	if _, ok := p.Entrypoints["instanceMethod"]; ok {
		t.Error("instance method published as an entrypoint")
	}
}
