package autodist_test

// Tests for the deployment lifecycle (Deploy / Invoke / Stats /
// Shutdown) and the validated Config: a resident cluster serving many
// entrypoint invocations, sequentially and concurrently, with
// coherence state retained across them.

import (
	"context"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"autodist"
)

// serviceSource is the request-loop workload: main() provisions a
// shared Table once; every other static method of Main is a service
// entrypoint invoked against the resident cluster.
const serviceSource = `
class Table {
	int label;
	int v0; int v1; int v2; int v3;
	Table(int label) {
		this.label = label;
		this.v0 = 10; this.v1 = 20; this.v2 = 30; this.v3 = 40;
	}
	int get(int slot) {
		if (slot == 0) { return this.v0; }
		if (slot == 1) { return this.v1; }
		if (slot == 2) { return this.v2; }
		return this.v3;
	}
	void put(int slot, int val) {
		if (slot == 0) { this.v0 = val; }
		if (slot == 1) { this.v1 = val; }
		if (slot == 2) { this.v2 = val; }
		if (slot == 3) { this.v3 = val; }
	}
	int sum() { return this.v0 + this.v1 + this.v2 + this.v3; }
	void bump(int n) { this.v0 = this.v0 + n; }
}
class Main {
	static Table t;
	static void main() { Main.t = new Table(7); System.println("service up"); }
	static int get(int slot) { return Main.t.get(slot); }
	static int put(int slot, int val) { Main.t.put(slot, val); return Main.t.get(slot); }
	static int sum() { return Main.t.sum(); }
	static int label() { return Main.t.label; }
	static void bump(int n) { Main.t.bump(n); }
	static int work(int n) {
		int s = 0;
		for (int i = 0; i < n; i++) { s = s + Main.t.label; }
		return s;
	}
}
`

// deployService compiles the service workload, pins the Table on node
// 1 (so every request crosses the wire), deploys k nodes and invokes
// main() once to provision.
func deployService(t testing.TB, k int, cfg autodist.Config) *autodist.Cluster {
	t.Helper()
	cluster, err := deployServiceErr(k, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return cluster
}

// buildServiceDist compiles the service workload and rewrites it
// k-ways with the Table pinned on node 1.
func buildServiceDist(k int) (*autodist.Distribution, error) {
	prog, err := autodist.CompileString(serviceSource)
	if err != nil {
		return nil, err
	}
	an, err := prog.Analyze()
	if err != nil {
		return nil, err
	}
	plan, err := an.Partition(k, autodist.PartitionOptions{Seed: 1, Epsilon: 0.6})
	if err != nil {
		return nil, err
	}
	for _, v := range an.Result.ODG.Graph.Vertices() {
		v.Part = 0
	}
	for _, s := range an.Result.ODG.Sites {
		if s.Allocated == "Table" {
			an.Result.ODG.Graph.Vertex(s.Node).Part = 1 % k
		}
	}
	return plan.Rewrite()
}

func deployServiceErr(k int, cfg autodist.Config) (*autodist.Cluster, error) {
	dist, err := buildServiceDist(k)
	if err != nil {
		return nil, err
	}
	cluster, err := dist.Deploy(cfg)
	if err != nil {
		return nil, err
	}
	if _, err := cluster.Invoke("main"); err != nil {
		cluster.Kill()
		return nil, err
	}
	return cluster, nil
}

// TestClusterServesEntrypoints is the acceptance scenario: a resident
// cluster serves ≥2 distinct entrypoints across ≥10 sequential and ≥4
// concurrent invocations with correct results.
func TestClusterServesEntrypoints(t *testing.T) {
	cluster := deployService(t, 2, autodist.Config{})
	defer cluster.Shutdown(context.Background())

	eps := cluster.Entrypoints()
	want := []string{"bump", "get", "label", "main", "put", "sum", "work"}
	if strings.Join(eps, ",") != strings.Join(want, ",") {
		t.Fatalf("Entrypoints() = %v, want %v", eps, want)
	}

	// ≥10 sequential invocations across three distinct entrypoints.
	seq := []struct {
		entry string
		args  []autodist.Value
		want  int64
	}{
		{"sum", nil, 100},
		{"get", []autodist.Value{0}, 10},
		{"get", []autodist.Value{3}, 40},
		{"put", []autodist.Value{1, 25}, 25},
		{"sum", nil, 105},
		{"put", []autodist.Value{0, 11}, 11},
		{"put", []autodist.Value{2, 33}, 33},
		{"get", []autodist.Value{2}, 33},
		{"sum", nil, 109},
		{"get", []autodist.Value{1}, 25},
	}
	for i, step := range seq {
		res, err := cluster.Invoke(step.entry, step.args...)
		if err != nil {
			t.Fatalf("step %d: Invoke(%s, %v): %v", i, step.entry, step.args, err)
		}
		if res.Value != step.want {
			t.Fatalf("step %d: %s(%v) = %v, want %d", i, step.entry, step.args, res.Value, step.want)
		}
	}

	// ≥4 concurrent invocations from separate goroutines: distinct
	// slots so results are deterministic.
	var wg sync.WaitGroup
	errs := make(chan error, 4)
	for slot := int64(0); slot < 4; slot++ {
		wg.Add(1)
		go func(slot int64) {
			defer wg.Done()
			res, err := cluster.Invoke("put", slot, 1000+slot)
			if err != nil {
				errs <- err
				return
			}
			if res.Value != 1000+slot {
				errs <- fmt.Errorf("concurrent put(%d) = %v, want %d", slot, res.Value, 1000+slot)
			}
		}(slot)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	res, err := cluster.Invoke("sum")
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != int64(4006) {
		t.Fatalf("sum after concurrent puts = %v, want 4006", res.Value)
	}
	if n := cluster.Invocations(); n < 15 {
		t.Errorf("Invocations() = %d, want ≥ 15", n)
	}
}

// TestClusterRetainsStateAcrossInvokes proves coherence state persists
// between invocations: the second identical invocation sends strictly
// fewer messages than the first, and the RetainedHits counter pins the
// hits to state learned in an earlier invocation.
func TestClusterRetainsStateAcrossInvokes(t *testing.T) {
	cluster := deployService(t, 2, autodist.Config{})
	defer cluster.Shutdown(context.Background())

	first, err := cluster.Invoke("label")
	if err != nil {
		t.Fatal(err)
	}
	second, err := cluster.Invoke("label")
	if err != nil {
		t.Fatal(err)
	}
	if first.Value != int64(7) || second.Value != int64(7) {
		t.Fatalf("label() = %v then %v, want 7 both times", first.Value, second.Value)
	}
	if first.Messages == 0 {
		t.Fatalf("first label() sent no messages; the Table is not remote from the starter")
	}
	if second.Messages >= first.Messages {
		t.Errorf("second label() sent %d messages, want strictly fewer than the first's %d",
			second.Messages, first.Messages)
	}
	if second.RetainedHits == 0 {
		t.Error("second label() reported no retained hits; cross-invocation cache retention broken")
	}
	if total := cluster.Stats().RetainedHits; total == 0 {
		t.Error("cluster Stats() reports no retained hits")
	}
}

// TestClusterStatsLive reads cumulative counters off a live cluster
// without stopping it.
func TestClusterStatsLive(t *testing.T) {
	cluster := deployService(t, 2, autodist.Config{})
	defer cluster.Shutdown(context.Background())

	before := cluster.Stats()
	if _, err := cluster.Invoke("sum"); err != nil {
		t.Fatal(err)
	}
	after := cluster.Stats()
	if after.Messages <= before.Messages {
		t.Errorf("Stats().Messages did not grow across an invocation: %d then %d",
			before.Messages, after.Messages)
	}
	if !strings.Contains(after.Output, "service up") {
		t.Errorf("live Stats().Output missing provisioning print; got %q", after.Output)
	}
}

// TestDeployRejectsPlanMismatch: explicit Config settings that
// contradict the distribution are errors, never silently rewritten.
func TestDeployRejectsPlanMismatch(t *testing.T) {
	dist, err := buildServiceDist(2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dist.Deploy(autodist.Config{K: 3}); err == nil {
		t.Error("Deploy accepted K=3 on a 2-way distribution")
	}
	if _, err := dist.Deploy(autodist.Config{Adaptive: true}); err == nil {
		t.Error("Deploy accepted Adaptive on a static distribution")
	}
	// Matching explicit values are fine.
	cluster, err := dist.Deploy(autodist.Config{K: 2})
	if err != nil {
		t.Fatalf("Deploy with matching K: %v", err)
	}
	cluster.Kill()
}

// TestStatsConcurrentWithInvoke reads live Stats — including the
// virtual-clock snapshot — while invocations run; must be
// race-detector clean.
func TestStatsConcurrentWithInvoke(t *testing.T) {
	cluster := deployService(t, 2, autodist.Config{CPUSpeeds: []float64{1.7e9, 8e8}})
	defer cluster.Shutdown(context.Background())
	done := make(chan error, 1)
	go func() {
		for i := 0; i < 20; i++ {
			if _, err := cluster.Invoke("sum"); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	var last float64
	for i := 0; i < 50; i++ {
		last = cluster.Stats().SimSeconds
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if final := cluster.Stats().SimSeconds; final <= 0 || final < last {
		t.Errorf("SimSeconds snapshot went backwards or stayed zero: %v then %v", last, final)
	}
}

// TestShutdownIdempotentAndInvokeAfterShutdown pins the lifecycle
// edges: Shutdown twice is fine, Invoke afterwards is a clean error.
func TestShutdownIdempotentAndInvokeAfterShutdown(t *testing.T) {
	cluster := deployService(t, 2, autodist.Config{})
	if err := cluster.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := cluster.Shutdown(context.Background()); err != nil {
		t.Fatalf("second Shutdown: %v", err)
	}
	if _, err := cluster.Invoke("sum"); err == nil {
		t.Fatal("Invoke after Shutdown succeeded")
	}
}

// TestConfigValidate pins the single source of truth for incoherent
// option combinations.
func TestConfigValidate(t *testing.T) {
	cases := []struct {
		name string
		cfg  autodist.Config
		ok   bool
	}{
		{"zero value", autodist.Config{}, true},
		{"plain distributed", autodist.Config{K: 2}, true},
		{"adaptive distributed", autodist.Config{K: 2, Adaptive: true, AdaptEvery: 8}, true},
		{"replicated distributed", autodist.Config{K: 3, Replicate: true}, true},
		{"tcp sequential", autodist.Config{K: 1, TCP: true}, false},
		{"unoptimized sequential", autodist.Config{Unoptimized: true}, false},
		{"adaptive sequential", autodist.Config{K: 1, Adaptive: true}, false},
		{"replicate sequential", autodist.Config{K: 0, Replicate: true}, false},
		{"adapt-every without adaptive", autodist.Config{K: 2, AdaptEvery: 8}, false},
		{"replicate with unoptimized", autodist.Config{K: 2, Replicate: true, Unoptimized: true}, false},
		{"negative adapt-every", autodist.Config{K: 2, Adaptive: true, AdaptEvery: -1}, false},
		{"negative k", autodist.Config{K: -2}, false},
		{"short speed table", autodist.Config{K: 3, CPUSpeeds: []float64{1e9}}, false},
		{"full speed table", autodist.Config{K: 2, CPUSpeeds: []float64{1e9, 8e8}}, true},
		{"concurrent distributed", autodist.Config{K: 2, MaxConcurrent: 8}, true},
		{"serialised distributed", autodist.Config{K: 2, MaxConcurrent: 1}, true},
		{"concurrency sequential", autodist.Config{K: 1, MaxConcurrent: 8}, false},
		{"negative concurrency", autodist.Config{K: 2, MaxConcurrent: -1}, false},
		{"recovery distributed", autodist.Config{K: 2, FailureRecovery: true}, true},
		{"recovery sequential", autodist.Config{K: 1, FailureRecovery: true}, false},
		{"chaos without recovery", autodist.Config{K: 2, ChaosDrop: 0.1}, false},
		{"heartbeat without recovery", autodist.Config{K: 2, HeartbeatInterval: time.Millisecond}, false},
		{"negative heartbeat", autodist.Config{K: 2, FailureRecovery: true, HeartbeatInterval: -time.Millisecond}, false},
		{"chaos probability out of range", autodist.Config{K: 2, FailureRecovery: true, ChaosDrop: 1.5}, false},
		{"chaos valid", autodist.Config{K: 2, FailureRecovery: true, ChaosSeed: 7, ChaosDrop: 0.01}, true},
	}
	for _, tc := range cases {
		err := tc.cfg.Validate()
		if tc.ok && err != nil {
			t.Errorf("%s: Validate() = %v, want nil", tc.name, err)
		}
		if !tc.ok && err == nil {
			t.Errorf("%s: Validate() accepted an incoherent config", tc.name)
		}
	}
}

// TestRunMatchesLifecycle proves Distribution.Run is exactly the
// Deploy → Invoke("main") → Shutdown composition: output and traffic
// counters agree on the bank pipeline.
func TestRunMatchesLifecycle(t *testing.T) {
	build := func() *autodist.Distribution {
		prog, err := autodist.CompileString(serviceSource)
		if err != nil {
			t.Fatal(err)
		}
		an, err := prog.Analyze()
		if err != nil {
			t.Fatal(err)
		}
		plan, err := an.Partition(2, autodist.PartitionOptions{Seed: 1, Epsilon: 0.6})
		if err != nil {
			t.Fatal(err)
		}
		dist, err := plan.Rewrite()
		if err != nil {
			t.Fatal(err)
		}
		return dist
	}
	run, err := build().Run(autodist.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}

	cluster, err := build().Deploy(autodist.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cluster.Invoke("main"); err != nil {
		t.Fatal(err)
	}
	if err := cluster.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	manual := cluster.Stats()

	if run.Output != manual.Output {
		t.Errorf("Run output %q != lifecycle output %q", run.Output, manual.Output)
	}
	if run.Messages != manual.Messages || run.BytesSent != manual.BytesSent ||
		run.CacheHits != manual.CacheHits || run.AsyncCalls != manual.AsyncCalls {
		t.Errorf("Run counters (%d msgs, %d B, %d hits, %d async) != lifecycle counters (%d msgs, %d B, %d hits, %d async)",
			run.Messages, run.BytesSent, run.CacheHits, run.AsyncCalls,
			manual.Messages, manual.BytesSent, manual.CacheHits, manual.AsyncCalls)
	}
}

// TestConcurrentInvokeCorrect runs disjoint-slot writers and shared
// readers as truly concurrent logical threads (MaxConcurrent = 8) and
// checks every result against the value a sequential run produces:
// parallel Invoke must change throughput, never answers.
func TestConcurrentInvokeCorrect(t *testing.T) {
	cluster := deployService(t, 2, autodist.Config{MaxConcurrent: 8})
	defer cluster.Shutdown(context.Background())

	const clients, per = 8, 5
	var wg sync.WaitGroup
	errs := make(chan error, clients*per)
	for g := 0; g < clients; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if g < 4 {
					// Writers: one per slot, so each slot's history is a
					// single sequential sequence and every read-back is
					// deterministic even while other slots change.
					val := int64(100*g + i)
					res, err := cluster.Invoke("put", int64(g), val)
					if err != nil {
						errs <- err
						return
					}
					if res.Value != val {
						errs <- fmt.Errorf("concurrent put(%d, %d) = %v", g, val, res.Value)
						return
					}
					continue
				}
				// Readers: label never changes (and after the first
				// fetch it is a cache hit on every thread), and work's
				// result depends only on its input.
				if res, err := cluster.Invoke("label"); err != nil {
					errs <- err
					return
				} else if res.Value != int64(7) {
					errs <- fmt.Errorf("concurrent label() = %v, want 7", res.Value)
					return
				}
				if res, err := cluster.Invoke("work", 50); err != nil {
					errs <- err
					return
				} else if res.Value != int64(50*7) {
					errs <- fmt.Errorf("concurrent work(50) = %v, want %d", res.Value, 50*7)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	// Final state matches the sequential run exactly: each slot holds
	// its single writer's last value.
	for slot := int64(0); slot < 4; slot++ {
		res, err := cluster.Invoke("get", slot)
		if err != nil {
			t.Fatal(err)
		}
		if want := int64(100*slot + per - 1); res.Value != want {
			t.Errorf("slot %d holds %v, want its writer's last value %d", slot, res.Value, want)
		}
	}
}

// TestConcurrentInvokeScales is the throughput guard: at MaxConcurrent
// = 8 the service workload must clear at least twice the
// invocations/sec of the serialised (MaxConcurrent = 1) deployment on
// the same machine.
func TestConcurrentInvokeScales(t *testing.T) {
	if testing.Short() {
		t.Skip("throughput guard skipped in -short mode")
	}
	if raceEnabled {
		t.Skip("race detector serialises execution; the throughput ratio is meaningless under it")
	}
	if runtime.NumCPU() < 4 {
		t.Skipf("need ≥4 CPUs for a meaningful scaling guard, have %d", runtime.NumCPU())
	}
	const clients, per, workN = 8, 12, 4000
	measure := func(maxConcurrent int) (float64, error) {
		cluster, err := deployServiceErr(2, autodist.Config{MaxConcurrent: maxConcurrent})
		if err != nil {
			return 0, err
		}
		defer cluster.Shutdown(context.Background())
		// Warm the write-once cache so both runs serve label locally.
		if _, err := cluster.Invoke("work", 1); err != nil {
			return 0, err
		}
		start := time.Now()
		var wg sync.WaitGroup
		errs := make(chan error, clients)
		for g := 0; g < clients; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < per; i++ {
					res, err := cluster.Invoke("work", workN)
					if err != nil {
						errs <- err
						return
					}
					if res.Value != int64(workN*7) {
						errs <- fmt.Errorf("work(%d) = %v, want %d", workN, res.Value, workN*7)
						return
					}
				}
			}()
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			return 0, err
		}
		return float64(clients*per) / time.Since(start).Seconds(), nil
	}

	serial, err := measure(1)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := measure(8)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("throughput: %.0f inv/s serialised, %.0f inv/s at MaxConcurrent=8 (%.1fx)",
		serial, parallel, parallel/serial)
	if parallel < 2*serial {
		t.Errorf("MaxConcurrent=8 reached %.0f inv/s, less than 2x the serialised %.0f inv/s",
			parallel, serial)
	}
}
