package autodist_test

// Tests for the deployment lifecycle (Deploy / Invoke / Stats /
// Shutdown) and the validated Config: a resident cluster serving many
// entrypoint invocations, sequentially and concurrently, with
// coherence state retained across them.

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"

	"autodist"
)

// serviceSource is the request-loop workload: main() provisions a
// shared Table once; every other static method of Main is a service
// entrypoint invoked against the resident cluster.
const serviceSource = `
class Table {
	int label;
	int v0; int v1; int v2; int v3;
	Table(int label) {
		this.label = label;
		this.v0 = 10; this.v1 = 20; this.v2 = 30; this.v3 = 40;
	}
	int get(int slot) {
		if (slot == 0) { return this.v0; }
		if (slot == 1) { return this.v1; }
		if (slot == 2) { return this.v2; }
		return this.v3;
	}
	void put(int slot, int val) {
		if (slot == 0) { this.v0 = val; }
		if (slot == 1) { this.v1 = val; }
		if (slot == 2) { this.v2 = val; }
		if (slot == 3) { this.v3 = val; }
	}
	int sum() { return this.v0 + this.v1 + this.v2 + this.v3; }
	void bump(int n) { this.v0 = this.v0 + n; }
}
class Main {
	static Table t;
	static void main() { Main.t = new Table(7); System.println("service up"); }
	static int get(int slot) { return Main.t.get(slot); }
	static int put(int slot, int val) { Main.t.put(slot, val); return Main.t.get(slot); }
	static int sum() { return Main.t.sum(); }
	static int label() { return Main.t.label; }
	static void bump(int n) { Main.t.bump(n); }
}
`

// deployService compiles the service workload, pins the Table on node
// 1 (so every request crosses the wire), deploys k nodes and invokes
// main() once to provision.
func deployService(t testing.TB, k int, cfg autodist.Config) *autodist.Cluster {
	t.Helper()
	cluster, err := deployServiceErr(k, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return cluster
}

// buildServiceDist compiles the service workload and rewrites it
// k-ways with the Table pinned on node 1.
func buildServiceDist(k int) (*autodist.Distribution, error) {
	prog, err := autodist.CompileString(serviceSource)
	if err != nil {
		return nil, err
	}
	an, err := prog.Analyze()
	if err != nil {
		return nil, err
	}
	plan, err := an.Partition(k, autodist.PartitionOptions{Seed: 1, Epsilon: 0.6})
	if err != nil {
		return nil, err
	}
	for _, v := range an.Result.ODG.Graph.Vertices() {
		v.Part = 0
	}
	for _, s := range an.Result.ODG.Sites {
		if s.Allocated == "Table" {
			an.Result.ODG.Graph.Vertex(s.Node).Part = 1 % k
		}
	}
	return plan.Rewrite()
}

func deployServiceErr(k int, cfg autodist.Config) (*autodist.Cluster, error) {
	dist, err := buildServiceDist(k)
	if err != nil {
		return nil, err
	}
	cluster, err := dist.Deploy(cfg)
	if err != nil {
		return nil, err
	}
	if _, err := cluster.Invoke("main"); err != nil {
		cluster.Kill()
		return nil, err
	}
	return cluster, nil
}

// TestClusterServesEntrypoints is the acceptance scenario: a resident
// cluster serves ≥2 distinct entrypoints across ≥10 sequential and ≥4
// concurrent invocations with correct results.
func TestClusterServesEntrypoints(t *testing.T) {
	cluster := deployService(t, 2, autodist.Config{})
	defer cluster.Shutdown(context.Background())

	eps := cluster.Entrypoints()
	want := []string{"bump", "get", "label", "main", "put", "sum"}
	if strings.Join(eps, ",") != strings.Join(want, ",") {
		t.Fatalf("Entrypoints() = %v, want %v", eps, want)
	}

	// ≥10 sequential invocations across three distinct entrypoints.
	seq := []struct {
		entry string
		args  []autodist.Value
		want  int64
	}{
		{"sum", nil, 100},
		{"get", []autodist.Value{0}, 10},
		{"get", []autodist.Value{3}, 40},
		{"put", []autodist.Value{1, 25}, 25},
		{"sum", nil, 105},
		{"put", []autodist.Value{0, 11}, 11},
		{"put", []autodist.Value{2, 33}, 33},
		{"get", []autodist.Value{2}, 33},
		{"sum", nil, 109},
		{"get", []autodist.Value{1}, 25},
	}
	for i, step := range seq {
		res, err := cluster.Invoke(step.entry, step.args...)
		if err != nil {
			t.Fatalf("step %d: Invoke(%s, %v): %v", i, step.entry, step.args, err)
		}
		if res.Value != step.want {
			t.Fatalf("step %d: %s(%v) = %v, want %d", i, step.entry, step.args, res.Value, step.want)
		}
	}

	// ≥4 concurrent invocations from separate goroutines: distinct
	// slots so results are deterministic.
	var wg sync.WaitGroup
	errs := make(chan error, 4)
	for slot := int64(0); slot < 4; slot++ {
		wg.Add(1)
		go func(slot int64) {
			defer wg.Done()
			res, err := cluster.Invoke("put", slot, 1000+slot)
			if err != nil {
				errs <- err
				return
			}
			if res.Value != 1000+slot {
				errs <- fmt.Errorf("concurrent put(%d) = %v, want %d", slot, res.Value, 1000+slot)
			}
		}(slot)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	res, err := cluster.Invoke("sum")
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != int64(4006) {
		t.Fatalf("sum after concurrent puts = %v, want 4006", res.Value)
	}
	if n := cluster.Invocations(); n < 15 {
		t.Errorf("Invocations() = %d, want ≥ 15", n)
	}
}

// TestClusterRetainsStateAcrossInvokes proves coherence state persists
// between invocations: the second identical invocation sends strictly
// fewer messages than the first, and the RetainedHits counter pins the
// hits to state learned in an earlier invocation.
func TestClusterRetainsStateAcrossInvokes(t *testing.T) {
	cluster := deployService(t, 2, autodist.Config{})
	defer cluster.Shutdown(context.Background())

	first, err := cluster.Invoke("label")
	if err != nil {
		t.Fatal(err)
	}
	second, err := cluster.Invoke("label")
	if err != nil {
		t.Fatal(err)
	}
	if first.Value != int64(7) || second.Value != int64(7) {
		t.Fatalf("label() = %v then %v, want 7 both times", first.Value, second.Value)
	}
	if first.Messages == 0 {
		t.Fatalf("first label() sent no messages; the Table is not remote from the starter")
	}
	if second.Messages >= first.Messages {
		t.Errorf("second label() sent %d messages, want strictly fewer than the first's %d",
			second.Messages, first.Messages)
	}
	if second.RetainedHits == 0 {
		t.Error("second label() reported no retained hits; cross-invocation cache retention broken")
	}
	if total := cluster.Stats().RetainedHits; total == 0 {
		t.Error("cluster Stats() reports no retained hits")
	}
}

// TestClusterStatsLive reads cumulative counters off a live cluster
// without stopping it.
func TestClusterStatsLive(t *testing.T) {
	cluster := deployService(t, 2, autodist.Config{})
	defer cluster.Shutdown(context.Background())

	before := cluster.Stats()
	if _, err := cluster.Invoke("sum"); err != nil {
		t.Fatal(err)
	}
	after := cluster.Stats()
	if after.Messages <= before.Messages {
		t.Errorf("Stats().Messages did not grow across an invocation: %d then %d",
			before.Messages, after.Messages)
	}
	if !strings.Contains(after.Output, "service up") {
		t.Errorf("live Stats().Output missing provisioning print; got %q", after.Output)
	}
}

// TestDeployRejectsPlanMismatch: explicit Config settings that
// contradict the distribution are errors, never silently rewritten.
func TestDeployRejectsPlanMismatch(t *testing.T) {
	dist, err := buildServiceDist(2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dist.Deploy(autodist.Config{K: 3}); err == nil {
		t.Error("Deploy accepted K=3 on a 2-way distribution")
	}
	if _, err := dist.Deploy(autodist.Config{Adaptive: true}); err == nil {
		t.Error("Deploy accepted Adaptive on a static distribution")
	}
	// Matching explicit values are fine.
	cluster, err := dist.Deploy(autodist.Config{K: 2})
	if err != nil {
		t.Fatalf("Deploy with matching K: %v", err)
	}
	cluster.Kill()
}

// TestStatsConcurrentWithInvoke reads live Stats — including the
// virtual-clock snapshot — while invocations run; must be
// race-detector clean.
func TestStatsConcurrentWithInvoke(t *testing.T) {
	cluster := deployService(t, 2, autodist.Config{CPUSpeeds: []float64{1.7e9, 8e8}})
	defer cluster.Shutdown(context.Background())
	done := make(chan error, 1)
	go func() {
		for i := 0; i < 20; i++ {
			if _, err := cluster.Invoke("sum"); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	var last float64
	for i := 0; i < 50; i++ {
		last = cluster.Stats().SimSeconds
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if final := cluster.Stats().SimSeconds; final <= 0 || final < last {
		t.Errorf("SimSeconds snapshot went backwards or stayed zero: %v then %v", last, final)
	}
}

// TestShutdownIdempotentAndInvokeAfterShutdown pins the lifecycle
// edges: Shutdown twice is fine, Invoke afterwards is a clean error.
func TestShutdownIdempotentAndInvokeAfterShutdown(t *testing.T) {
	cluster := deployService(t, 2, autodist.Config{})
	if err := cluster.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := cluster.Shutdown(context.Background()); err != nil {
		t.Fatalf("second Shutdown: %v", err)
	}
	if _, err := cluster.Invoke("sum"); err == nil {
		t.Fatal("Invoke after Shutdown succeeded")
	}
}

// TestConfigValidate pins the single source of truth for incoherent
// option combinations.
func TestConfigValidate(t *testing.T) {
	cases := []struct {
		name string
		cfg  autodist.Config
		ok   bool
	}{
		{"zero value", autodist.Config{}, true},
		{"plain distributed", autodist.Config{K: 2}, true},
		{"adaptive distributed", autodist.Config{K: 2, Adaptive: true, AdaptEvery: 8}, true},
		{"replicated distributed", autodist.Config{K: 3, Replicate: true}, true},
		{"tcp sequential", autodist.Config{K: 1, TCP: true}, false},
		{"unoptimized sequential", autodist.Config{Unoptimized: true}, false},
		{"adaptive sequential", autodist.Config{K: 1, Adaptive: true}, false},
		{"replicate sequential", autodist.Config{K: 0, Replicate: true}, false},
		{"adapt-every without adaptive", autodist.Config{K: 2, AdaptEvery: 8}, false},
		{"replicate with unoptimized", autodist.Config{K: 2, Replicate: true, Unoptimized: true}, false},
		{"negative adapt-every", autodist.Config{K: 2, Adaptive: true, AdaptEvery: -1}, false},
		{"negative k", autodist.Config{K: -2}, false},
		{"short speed table", autodist.Config{K: 3, CPUSpeeds: []float64{1e9}}, false},
		{"full speed table", autodist.Config{K: 2, CPUSpeeds: []float64{1e9, 8e8}}, true},
	}
	for _, tc := range cases {
		err := tc.cfg.Validate()
		if tc.ok && err != nil {
			t.Errorf("%s: Validate() = %v, want nil", tc.name, err)
		}
		if !tc.ok && err == nil {
			t.Errorf("%s: Validate() accepted an incoherent config", tc.name)
		}
	}
}

// TestRunMatchesLifecycle proves Distribution.Run is exactly the
// Deploy → Invoke("main") → Shutdown composition: output and traffic
// counters agree on the bank pipeline.
func TestRunMatchesLifecycle(t *testing.T) {
	build := func() *autodist.Distribution {
		prog, err := autodist.CompileString(serviceSource)
		if err != nil {
			t.Fatal(err)
		}
		an, err := prog.Analyze()
		if err != nil {
			t.Fatal(err)
		}
		plan, err := an.Partition(2, autodist.PartitionOptions{Seed: 1, Epsilon: 0.6})
		if err != nil {
			t.Fatal(err)
		}
		dist, err := plan.Rewrite()
		if err != nil {
			t.Fatal(err)
		}
		return dist
	}
	run, err := build().Run(autodist.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}

	cluster, err := build().Deploy(autodist.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cluster.Invoke("main"); err != nil {
		t.Fatal(err)
	}
	if err := cluster.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	manual := cluster.Stats()

	if run.Output != manual.Output {
		t.Errorf("Run output %q != lifecycle output %q", run.Output, manual.Output)
	}
	if run.Messages != manual.Messages || run.BytesSent != manual.BytesSent ||
		run.CacheHits != manual.CacheHits || run.AsyncCalls != manual.AsyncCalls {
		t.Errorf("Run counters (%d msgs, %d B, %d hits, %d async) != lifecycle counters (%d msgs, %d B, %d hits, %d async)",
			run.Messages, run.BytesSent, run.CacheHits, run.AsyncCalls,
			manual.Messages, manual.BytesSent, manual.CacheHits, manual.AsyncCalls)
	}
}
