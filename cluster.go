package autodist

import (
	"context"
	"fmt"
	"io"
	"strings"
	"sync"
	"time"

	"autodist/internal/bytecode"
	"autodist/internal/rewrite"
	"autodist/internal/runtime"
	"autodist/internal/transport"
	"autodist/internal/vm"
)

// Value is a program value crossing the service boundary: entrypoint
// arguments and invocation results. MJ ints/booleans are int64, floats
// are float64, strings are string; nil is the null reference.
type Value = vm.Value

// Cluster is a deployed distribution: every node's Message Exchange
// service is up and stays resident between invocations, so one
// compiled distribution can serve many requests. Invoke runs any
// static entrypoint of the ExecutionStarter class; coherence state —
// migrated objects, forwarding hints, write-once caches, read replicas
// — persists across invocations, so placement and replicas learned
// serving request N make request N+1 cheaper (see
// InvokeResult.RetainedHits). Shutdown drains and stops the nodes.
type Cluster struct {
	rt       *runtime.Cluster
	cfg      Config
	out      *clusterOut
	chaos    *transport.Chaos // non-nil iff Config.FailureRecovery
	deployed time.Time

	// Elastic-membership state (Config.Elastic): the distribution to
	// rewrite joiner programs from, one pre-wrap fabric endpoint to
	// grow new ranks out of, and the wrapper options a joiner's
	// endpoint must be dressed with to match the sitting members.
	// joinMu serialises Join calls (rank assignment is sequential).
	d      *Distribution
	base   transport.Endpoint
	rules  transport.ChaosRules
	ropts  transport.ReliableOptions
	joinMu sync.Mutex
}

// maxCapturedOutput bounds the output a resident deployment captures
// when no writer was supplied: a long-lived service printing on every
// request must not grow memory without bound. Batch runs stay far
// below it; services needing full output pass Config.Out.
const maxCapturedOutput = 1 << 20

// clusterOut serialises the shared out-writer (concurrent Invoke
// callers may print) and captures output when the deployment did not
// supply a writer. Capture is bounded by maxCapturedOutput; writes
// past the bound are counted but discarded.
type clusterOut struct {
	mu      sync.Mutex
	w       io.Writer // nil: capture into sb
	sb      strings.Builder
	dropped int64
}

func (o *clusterOut) Write(p []byte) (int, error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.w != nil {
		return o.w.Write(p)
	}
	if room := maxCapturedOutput - o.sb.Len(); room < len(p) {
		o.dropped += int64(len(p) - max(room, 0))
		if room > 0 {
			o.sb.Write(p[:room])
		}
		return len(p), nil
	}
	return o.sb.Write(p)
}

// String returns the captured output ("" when a writer was supplied)
// and how many bytes were dropped past the capture bound.
func (o *clusterOut) String() (string, int64) {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.sb.String(), o.dropped
}

// Deploy brings the distributed program up as a resident service: it
// creates the fabric (in-process channels or local TCP), builds one VM
// per node, starts every Message Exchange service, and returns the
// live Cluster without invoking anything. The configuration is
// normalized against the plan (K, Adaptive, the adaptation-epoch
// default) and then validated — Config.Validate is the single
// authority on incoherent combinations.
func (d *Distribution) Deploy(cfg Config) (*Cluster, error) {
	// Normalize against the plan: zero values are filled in, but an
	// explicit setting that contradicts the distribution is an error —
	// never silently rewritten.
	if cfg.K != 0 && cfg.K != d.Plan.K {
		return nil, fmt.Errorf("autodist: Config.K = %d but the distribution was partitioned for %d nodes", cfg.K, d.Plan.K)
	}
	cfg.K = d.Plan.K
	if cfg.Adaptive && !d.Result.Plan.Adaptive {
		return nil, fmt.Errorf("autodist: Config.Adaptive set but the distribution is static (build it with Plan.RewriteAdaptive or RewriteOptions.Adaptive)")
	}
	cfg.Adaptive = d.Result.Plan.Adaptive
	if cfg.Adaptive && cfg.AdaptEvery == 0 {
		cfg.AdaptEvery = DefaultAdaptEvery
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	var eps []transport.Endpoint
	if cfg.TCP {
		topts := transport.DefaultTCPOptions()
		topts.Coalesce = !cfg.TCPNoCoalesce
		topts.Compress = cfg.TCPCompress
		var err error
		eps, err = transport.NewTCPClusterOpts(cfg.K, topts)
		if err != nil {
			return nil, err
		}
	} else {
		eps = transport.NewInProc(cfg.K)
	}
	// The base fabric endpoint outlives any wrapping below: Join grows
	// new ranks from it (chaos/reliability wrappers cannot grow).
	base := eps[0]
	rules := transport.ChaosRules{
		Seed: cfg.ChaosSeed, Drop: cfg.ChaosDrop, Dup: cfg.ChaosDup, Reorder: cfg.ChaosReorder,
	}
	ropts := transport.ReliableOptions{
		HeartbeatInterval: cfg.HeartbeatInterval,
		RetransmitTimeout: cfg.RetransmitTimeout,
	}
	var chaos *transport.Chaos
	if cfg.FailureRecovery {
		// The chaos layer always wraps a recovering deployment — with
		// all-zero rules it passes frames through untouched — so
		// Cluster.FailNode works whether or not faults are injected.
		// The reliability layer sits above it and must heal everything
		// it injects.
		chaos, eps = transport.NewChaos(eps, rules)
		for i := range eps {
			eps[i] = transport.NewReliable(eps[i], ropts)
		}
	}
	out := &clusterOut{w: cfg.Out}
	maxSteps := cfg.MaxSteps
	if maxSteps == 0 {
		maxSteps = defaultMaxSteps
	}
	progs := make([]*bytecode.Program, cfg.K)
	copy(progs, d.Result.Nodes)
	rt, err := runtime.NewCluster(progs, d.Result.Plan, eps, runtime.Options{
		Out: out, CPUSpeeds: cfg.CPUSpeeds, Net: cfg.Net, MaxSteps: maxSteps,
		Unoptimized: cfg.Unoptimized, Fuse: !cfg.NoFuse, AdaptEvery: cfg.AdaptEvery, Replicate: cfg.Replicate,
		MaxConcurrent: cfg.MaxConcurrent, FailureRecovery: cfg.FailureRecovery,
		Compile: cfg.Compile, CompileThreshold: compileThreshold(cfg),
		Elastic: cfg.Elastic, MaxRanks: maxRanks(cfg),
	})
	if err != nil {
		return nil, err
	}
	rt.Start()
	return &Cluster{
		rt: rt, cfg: cfg, out: out, chaos: chaos, deployed: time.Now(),
		d: d, base: base, rules: rules, ropts: ropts,
	}, nil
}

// maxRanks resolves Config.MaxRanks' zero default for elastic
// deployments (0 stays 0 otherwise — the runtime rejects MaxRanks
// without Elastic).
func maxRanks(cfg Config) int {
	if cfg.Elastic && cfg.MaxRanks == 0 {
		return DefaultMaxRanks
	}
	return cfg.MaxRanks
}

// Join admits one fresh node into the running elastic deployment and
// returns its rank. The program is rewritten for the new rank from the
// deployed distribution, the fabric is grown (a new in-process channel
// pair or TCP listener) and wrapped to match the sitting members
// (chaos, reliability), and the node performs the JOIN handshake with
// the coordinator: program-digest authentication, view advancement, a
// WELCOME broadcast to every member, and object migration onto the new
// capacity — all while invocations keep flowing. Requires
// Config.Elastic; fails once MaxRanks ranks exist.
func (c *Cluster) Join() (int, error) {
	if !c.cfg.Elastic {
		return 0, fmt.Errorf("autodist: Join requires a deployment with Config.Elastic")
	}
	c.joinMu.Lock()
	defer c.joinMu.Unlock()
	grown, err := transport.Grow(c.base)
	if err != nil {
		return 0, err
	}
	rank := grown.Rank()
	ep := grown
	if c.chaos != nil {
		ep = transport.NewReliable(c.chaos.Extend(ep, c.rules), c.ropts)
	}
	plan := c.d.Result.Plan
	// The joiner treats every class the way rank 0 does (adaptive
	// plans mark all mediated classes dependent on every node, so this
	// is an exact extension, not an approximation). Safe under joinMu:
	// ClassHasRemote is only read at rewrite time.
	if plan.ClassHasRemote != nil && plan.ClassHasRemote[rank] == nil {
		row := map[string]bool{}
		for cls, v := range plan.ClassHasRemote[0] {
			row[cls] = v
		}
		plan.ClassHasRemote[rank] = row
	}
	prog, err := rewrite.RewriteForNode(c.d.Plan.Analysis.Program.Bytecode, plan, rank)
	if err != nil {
		_ = ep.Close()
		return 0, err
	}
	if _, err := c.rt.Join(prog, ep); err != nil {
		return 0, err
	}
	return rank, nil
}

// Drain gracefully retires one member of the elastic deployment: the
// rank migrates every object it owns to the surviving members, the
// membership view advances and is broadcast, and the node shuts down —
// retired from the reliability layer so its silence is never mistaken
// for a crash. Its rank is never reused. Requires Config.Elastic.
func (c *Cluster) Drain(rank int) error {
	if !c.cfg.Elastic {
		return fmt.Errorf("autodist: Drain requires a deployment with Config.Elastic")
	}
	c.joinMu.Lock()
	defer c.joinMu.Unlock()
	return c.rt.Drain(rank)
}

// FailNode simulates the crash of one node: its endpoint is severed
// and every frame to or from it is black-holed, exactly as if the
// process died. The reliability layer detects the silence within the
// heartbeat deadline, survivors promote their replicas of the dead
// node's objects, and in-flight invocations that hit it are re-driven
// (see Config.FailureRecovery). Requires a deployment with
// FailureRecovery; node 0 hosts the ExecutionStarter and the recovery
// coordinator and cannot be failed. Idempotent per rank; there is no
// way to revive a failed node.
func (c *Cluster) FailNode(rank int) error {
	if c.chaos == nil {
		return fmt.Errorf("autodist: FailNode requires a deployment with Config.FailureRecovery")
	}
	if rank <= 0 || rank >= c.cfg.K {
		return fmt.Errorf("autodist: cannot fail node %d of a %d-node deployment (node 0 hosts the starter and recovery coordinator)", rank, c.cfg.K)
	}
	c.chaos.Kill(rank)
	return nil
}

// InvokeResult is one entrypoint invocation's outcome: the returned
// value and the invocation's share of the cluster's traffic — the
// per-thread counters its logical thread accumulated on every node,
// so the numbers stay exact when invocations run concurrently.
type InvokeResult struct {
	// Entry is the invoked entrypoint name.
	Entry string
	// Value is the entrypoint's return value (nil for void).
	Value Value
	// Wall is the host-measured invocation time (including any wait
	// for the logical thread).
	Wall time.Duration
	// Messages and BytesSent count the distribution traffic this
	// invocation generated; the remaining counters mirror RunResult's
	// (see there for semantics).
	Messages       int64
	BytesSent      int64
	CacheHits      int64
	AsyncCalls     int64
	BatchFrames    int64
	Migrations     int64
	Forwards       int64
	ReplicaHits    int64
	ReplicaFetches int64
	Invalidations  int64
	// RetainedHits counts the hits this invocation served from cache
	// or replica state learned during an earlier invocation — direct
	// evidence that the resident cluster's coherence state is carrying
	// work across requests.
	RetainedHits int64
	// RedrivenInvocations counts how many times this invocation was
	// re-executed after a node death (0 on the failure-free path; see
	// Config.FailureRecovery).
	RedrivenInvocations int64
	// CompiledMethods, TierUps, CompiledEntries and Deopts are this
	// invocation's share of the tiered-execution activity:
	// compilations its logical thread triggered, promotions it
	// performed, compiled frames it entered, and deopt fallbacks it
	// took (see Config.Compile).
	CompiledMethods int64
	TierUps         int64
	CompiledEntries int64
	Deopts          int64
}

// Invoke executes a named static entrypoint of the ExecutionStarter
// class — any static method of the main class, main() included — with
// the given arguments, and returns its value plus per-invocation
// traffic counters (this invocation's logical thread's counters,
// rolled up across every node — exact even while other invocations
// run). Safe for concurrent use: up to Config.MaxConcurrent
// invocations execute as truly concurrent logical threads across the
// cluster, synchronising only at per-object access gates; with the
// default of one they serialise exactly like the paper's
// single-logical-thread protocol. The coherence layer, replication
// protocol and adaptive coordinator keep running across and between
// them.
//
// Go arguments are coerced to program values: int variants become
// int64, bool becomes the MJ boolean encoding, float32 becomes
// float64; strings, int64, float64 and nil pass through.
func (c *Cluster) Invoke(entry string, args ...Value) (*InvokeResult, error) {
	vmArgs := make([]vm.Value, len(args))
	for i, a := range args {
		vmArgs[i] = coerceValue(a)
	}
	start := time.Now()
	v, delta, err := c.rt.InvokeEntry(entry, vmArgs)
	if err != nil {
		return nil, err
	}
	return &InvokeResult{
		Entry:          entry,
		Value:          v,
		Wall:           time.Since(start),
		Messages:       delta.MessagesSent,
		BytesSent:      delta.BytesSent,
		CacheHits:      delta.CacheHits,
		AsyncCalls:     delta.AsyncCalls,
		BatchFrames:    delta.BatchFrames,
		Migrations:     delta.Migrations,
		Forwards:       delta.Forwards,
		ReplicaHits:    delta.ReplicaHits,
		ReplicaFetches: delta.ReplicaFetches,
		Invalidations:  delta.Invalidations,
		RetainedHits:   delta.RetainedHits,

		RedrivenInvocations: delta.RedrivenInvocations,
		CompiledMethods:     delta.CompiledMethods,
		TierUps:             delta.TierUps,
		CompiledEntries:     delta.CompiledEntries,
		Deopts:              delta.Deopts,
	}, nil
}

// coerceValue maps common Go values onto the VM's value domain.
func coerceValue(a Value) vm.Value {
	switch x := a.(type) {
	case int:
		return int64(x)
	case int32:
		return int64(x)
	case uint:
		return int64(x)
	case uint32:
		return int64(x)
	case bool:
		if x {
			return int64(1)
		}
		return int64(0)
	case float32:
		return float64(x)
	}
	return a
}

// Entrypoints lists the static entrypoints this cluster can Invoke,
// sorted by name.
func (c *Cluster) Entrypoints() []string { return c.rt.Entrypoints() }

// Invocations returns how many entrypoint invocations the cluster has
// served.
func (c *Cluster) Invocations() int64 { return c.rt.Invocations() }

// Stats returns live cumulative counters for the deployment —
// RunResult-shaped, readable at any time without stopping the cluster.
// Output holds everything captured so far when the deployment did not
// supply a writer (bounded; see Deploy). SimSeconds is the virtual
// clock as of the last completed invocation.
func (c *Cluster) Stats() *RunResult {
	output, dropped := c.out.String()
	r := &RunResult{
		Output:        output,
		OutputDropped: dropped,
		Wall:          time.Since(c.deployed),
		SimSeconds:    c.rt.SimSecondsObserved(),
	}
	r.fillStats(c.rt.TotalStats())
	return r
}

// Shutdown drains the deployment and stops it: in-flight invocations
// finish (new ones are rejected), outstanding asynchronous batches are
// flushed through the final barrier — surfacing any deferred
// asynchronous failure as the returned error — and every node winds
// down. A cancelled or expired context skips the drain and stops the
// nodes immediately. Idempotent.
func (c *Cluster) Shutdown(ctx context.Context) error {
	return c.rt.Shutdown(ctx)
}

// Kill stops the cluster immediately: no drain, no final barrier.
// Batch Run uses it after a failed main(); long-lived services should
// prefer Shutdown.
func (c *Cluster) Kill() { c.rt.Kill() }
