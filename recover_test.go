package autodist_test

// Fault-tolerance tests: a deployed cluster surviving the loss of a
// node via heartbeat detection, replica promotion and idempotent
// re-drive of in-flight invocations — plus the shutdown lifecycle
// edges that node loss stresses (Shutdown racing Invoke, Shutdown
// after a peer died).

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"autodist"
)

// faultSource is the fault-injection workload: two independent tables,
// one pinned on node 1 (the node the tests kill) and one on node 2 (a
// survivor whose exactly-once behaviour the idempotency test pins).
// Both classes are read-mostly — reads outnumber write sites beyond
// the replication gate — so the Replicate rewrite makes them
// promotion candidates after their owner dies.
const faultSource = `
class Ta {
	int v0; int v1; int v2; int v3;
	Ta() { this.v0 = 10; this.v1 = 20; this.v2 = 30; this.v3 = 40; }
	int get(int slot) {
		if (slot == 0) { return this.v0; }
		if (slot == 1) { return this.v1; }
		if (slot == 2) { return this.v2; }
		return this.v3;
	}
	int sum() { return this.v0 + this.v1 + this.v2 + this.v3; }
	void put(int slot, int val) {
		if (slot == 0) { this.v0 = val; }
		if (slot == 1) { this.v1 = val; }
	}
}
class Tb {
	int w0; int w1; int w2; int w3;
	Tb() { this.w0 = 10; this.w1 = 20; this.w2 = 30; this.w3 = 40; }
	int get(int slot) {
		if (slot == 0) { return this.w0; }
		if (slot == 1) { return this.w1; }
		if (slot == 2) { return this.w2; }
		return this.w3;
	}
	int sum() { return this.w0 + this.w1 + this.w2 + this.w3; }
	void bump(int n) { this.w0 = this.w0 + n; }
}
class Main {
	static Ta a;
	static Tb b;
	static void main() { Main.a = new Ta(); Main.b = new Tb(); }
	static int suma() { return Main.a.sum(); }
	static int geta(int slot) { return Main.a.get(slot); }
	static int puta(int slot, int val) { Main.a.put(slot, val); return Main.a.get(slot); }
	static int sumb() { return Main.b.sum(); }
	static int getb(int slot) { return Main.b.get(slot); }
	static int mixw(int val) {
		Main.b.bump(1);
		Main.a.put(0, val);
		return Main.a.get(0);
	}
}
`

// buildFaultDist compiles the fault workload, pins Ta's instance on
// node 1 and Tb's on node 2 (mod k), and rewrites with the given
// options — so the tests control exactly which node's death strands
// which object.
func buildFaultDist(k int, opts autodist.RewriteOptions) (*autodist.Distribution, error) {
	prog, err := autodist.CompileString(faultSource)
	if err != nil {
		return nil, err
	}
	an, err := prog.Analyze()
	if err != nil {
		return nil, err
	}
	plan, err := an.Partition(k, autodist.PartitionOptions{Seed: 1, Epsilon: 0.6})
	if err != nil {
		return nil, err
	}
	for _, v := range an.Result.ODG.Graph.Vertices() {
		v.Part = 0
	}
	for _, s := range an.Result.ODG.Sites {
		switch s.Allocated {
		case "Ta":
			an.Result.ODG.Graph.Vertex(s.Node).Part = 1 % k
		case "Tb":
			an.Result.ODG.Graph.Vertex(s.Node).Part = 2 % k
		}
	}
	return plan.RewriteWith(opts)
}

// deployFault deploys the fault workload and provisions it with one
// main() invocation.
func deployFault(t testing.TB, k int, opts autodist.RewriteOptions, cfg autodist.Config) *autodist.Cluster {
	t.Helper()
	dist, err := buildFaultDist(k, opts)
	if err != nil {
		t.Fatal(err)
	}
	cluster, err := dist.Deploy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cluster.Invoke("main"); err != nil {
		cluster.Kill()
		t.Fatal(err)
	}
	t.Cleanup(cluster.Kill)
	return cluster
}

// invokeInt invokes entry and requires an int64 result.
func invokeInt(t *testing.T, c *autodist.Cluster, entry string, args ...autodist.Value) (int64, *autodist.InvokeResult) {
	t.Helper()
	res, err := c.Invoke(entry, args...)
	if err != nil {
		t.Fatalf("Invoke(%s, %v): %v", entry, args, err)
	}
	v, ok := res.Value.(int64)
	if !ok {
		t.Fatalf("Invoke(%s, %v) = %v (%T), want int64", entry, args, res.Value, res.Value)
	}
	return v, res
}

// isPeerDownErr matches the public face of transport.ErrPeerDown — the
// transport package is internal, so tests match the documented message
// fragment the runtime propagates.
func isPeerDownErr(err error) bool {
	return err != nil && strings.Contains(err.Error(), "peer down")
}

// TestFailNodeValidation pins FailNode's guard rails: it needs a
// recovery-enabled deployment, and node 0 (starter and recovery
// coordinator) cannot be killed.
func TestFailNodeValidation(t *testing.T) {
	plain := deployFault(t, 2, autodist.RewriteOptions{}, autodist.Config{K: 2})
	defer plain.Shutdown(context.Background())
	if err := plain.FailNode(1); err == nil {
		t.Error("FailNode succeeded on a deployment without FailureRecovery")
	}

	rec := deployFault(t, 3, autodist.RewriteOptions{}, autodist.Config{K: 3, FailureRecovery: true})
	defer rec.Shutdown(context.Background())
	for _, rank := range []int{0, -1, 3} {
		if err := rec.FailNode(rank); err == nil {
			t.Errorf("FailNode(%d) succeeded, want error", rank)
		}
	}
}

// TestKillNodePlainOwned: an object owned by a dead node with no
// replica anywhere is lost — the invariant is a clean, bounded "peer
// down" error (never a hang, never a fabricated result) and a cluster
// that still shuts down.
func TestKillNodePlainOwned(t *testing.T) {
	cluster := deployFault(t, 3, autodist.RewriteOptions{}, autodist.Config{
		K:                 3,
		FailureRecovery:   true,
		HeartbeatInterval: 10 * time.Millisecond,
	})
	if v, _ := invokeInt(t, cluster, "suma"); v != 100 {
		t.Fatalf("suma() = %d, want 100", v)
	}
	if err := cluster.FailNode(1); err != nil {
		t.Fatal(err)
	}
	_, err := cluster.Invoke("suma")
	if !isPeerDownErr(err) {
		t.Fatalf("suma() after killing the unreplicated owner: %v, want a peer-down error", err)
	}
	// The survivor on node 2 is untouched.
	if v, _ := invokeInt(t, cluster, "sumb"); v != 100 {
		t.Fatalf("sumb() after node 1 died = %d, want 100", v)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := cluster.Shutdown(ctx); err != nil && ctx.Err() != nil {
		t.Fatalf("Shutdown hung after node loss: %v", err)
	}
}

// TestKillNodeReplicaPromotion is the survival scenario: the killed
// node's object has a warm replica, the coordinator promotes it, and
// the same invocation returns the byte-identical result before and
// after the crash — then writes prove the promoted copy is a real,
// mutable owner.
func TestKillNodeReplicaPromotion(t *testing.T) {
	cluster := deployFault(t, 3, autodist.RewriteOptions{Replicate: true}, autodist.Config{
		K:                 3,
		Replicate:         true,
		FailureRecovery:   true,
		HeartbeatInterval: 15 * time.Millisecond,
	})
	defer cluster.Shutdown(context.Background())

	// Warm the replica of Ta onto node 0 with reads.
	for i := 0; i < 2; i++ {
		if v, _ := invokeInt(t, cluster, "suma"); v != 100 {
			t.Fatalf("suma() warm-up = %d, want 100", v)
		}
	}
	if err := cluster.FailNode(1); err != nil {
		t.Fatal(err)
	}
	// Byte-identical result across the crash.
	if v, _ := invokeInt(t, cluster, "suma"); v != 100 {
		t.Fatalf("suma() after owner death = %d, want 100", v)
	}
	// The failure detector and recovery run on heartbeat time; wait for
	// the promotion counter rather than sleeping a fixed amount.
	deadline := time.Now().Add(5 * time.Second)
	for cluster.Stats().PromotedReplicas == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("no replica promotion within 5s: stats %+v", cluster.Stats())
		}
		time.Sleep(10 * time.Millisecond)
	}
	// The promoted copy is a live owner: writes take and are readable.
	if v, _ := invokeInt(t, cluster, "puta", 0, 11); v != 11 {
		t.Fatalf("puta(0,11) on the promoted owner = %d, want 11", v)
	}
	if v, _ := invokeInt(t, cluster, "suma"); v != 101 {
		t.Fatalf("suma() after write to promoted owner = %d, want 101", v)
	}
}

// TestInvokeIdempotentAcrossRetry pins exactly-once effects under
// re-drive: an invocation that already performed a side effect on a
// surviving node before hitting the dead one is re-driven after
// recovery, and the dedup journal replays — not re-executes — the
// completed prefix.
func TestInvokeIdempotentAcrossRetry(t *testing.T) {
	cluster := deployFault(t, 3, autodist.RewriteOptions{Replicate: true}, autodist.Config{
		K:                 3,
		Replicate:         true,
		FailureRecovery:   true,
		HeartbeatInterval: 15 * time.Millisecond,
	})
	defer cluster.Shutdown(context.Background())

	// Warm Ta's replica so recovery has something to promote.
	if v, _ := invokeInt(t, cluster, "suma"); v != 100 {
		t.Fatalf("suma() warm-up = %d, want 100", v)
	}
	if err := cluster.FailNode(1); err != nil {
		t.Fatal(err)
	}
	// mixw bumps Tb on live node 2, then writes Ta whose owner just
	// died: the write parks until the failure detector fires, the
	// invocation is re-driven after promotion, and the bump must not
	// repeat.
	v, res := invokeInt(t, cluster, "mixw", 99)
	if v != 99 {
		t.Fatalf("mixw(99) across the crash = %d, want 99", v)
	}
	if res.RedrivenInvocations == 0 {
		t.Error("mixw crossed a node death but reports no re-driven invocations")
	}
	if v, _ := invokeInt(t, cluster, "getb", 0); v != 11 {
		t.Fatalf("getb(0) = %d, want 11 — the bump ran %s", v,
			map[bool]string{true: "more than once", false: "less than once"}[v > 11])
	}
	if v, _ := invokeInt(t, cluster, "suma"); v != 189 {
		t.Fatalf("suma() after re-driven write = %d, want 189", v)
	}
	if s := cluster.Stats(); s.RedrivenInvocations == 0 || s.PromotedReplicas == 0 {
		t.Errorf("cluster stats missing recovery evidence: %+v", s)
	}
}

// TestKillNodeDuringAdaptiveRun: node death with live migration in
// flight. Every invocation must either return the correct value or a
// clean peer-down error — never a wrong value, never a hang — and the
// cluster must still shut down.
func TestKillNodeDuringAdaptiveRun(t *testing.T) {
	cluster := deployFault(t, 3, autodist.RewriteOptions{Adaptive: true}, autodist.Config{
		K:                 3,
		Adaptive:          true,
		AdaptEvery:        4,
		FailureRecovery:   true,
		HeartbeatInterval: 10 * time.Millisecond,
	})
	const rounds = 30
	for i := 0; i < rounds; i++ {
		if i == rounds/2 {
			if err := cluster.FailNode(1); err != nil {
				t.Fatal(err)
			}
		}
		res, err := cluster.Invoke("geta", 3)
		switch {
		case err == nil:
			if res.Value != int64(40) {
				t.Fatalf("round %d: geta(3) = %v, want 40 (a wrong value is worse than an error)", i, res.Value)
			}
		case isPeerDownErr(err):
			// Acceptable: the object was stranded on the dead node.
		default:
			t.Fatalf("round %d: geta(3): %v, want a result or a peer-down error", i, err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := cluster.Shutdown(ctx); err != nil && ctx.Err() != nil {
		t.Fatalf("Shutdown hung after mid-migration node loss: %v", err)
	}
}

// TestShutdownConcurrentWithInvoke is the lifecycle race regression:
// Shutdown called while invocations are in flight — and called twice
// concurrently — must not hang, panic or deadlock; in-flight
// invocations either complete or fail cleanly.
func TestShutdownConcurrentWithInvoke(t *testing.T) {
	cluster := deployService(t, 2, autodist.Config{MaxConcurrent: 4})
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				res, err := cluster.Invoke("sum")
				if err != nil {
					// After close this is expected; record and stop.
					errs <- err
					return
				}
				if res.Value != int64(100) {
					errs <- fmt.Errorf("sum() = %v during shutdown race, want 100", res.Value)
					return
				}
			}
		}(g)
	}
	// Two concurrent Shutdowns racing the invocation storm.
	for s := 0; s < 2; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			if err := cluster.Shutdown(ctx); err != nil && ctx.Err() != nil {
				errs <- fmt.Errorf("concurrent Shutdown hung: %v", err)
			}
		}()
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("Shutdown racing Invoke deadlocked")
	}
	close(errs)
	for err := range errs {
		if err == nil {
			continue
		}
		msg := err.Error()
		if strings.Contains(msg, "hung") || strings.Contains(msg, "want 100") {
			t.Error(err)
		}
	}
}

// TestShutdownAfterNodeLoss: Shutdown of a cluster that already lost a
// member returns instead of waiting forever for the dead node's
// goodbye.
func TestShutdownAfterNodeLoss(t *testing.T) {
	cluster := deployFault(t, 3, autodist.RewriteOptions{}, autodist.Config{
		K:                 3,
		FailureRecovery:   true,
		HeartbeatInterval: 10 * time.Millisecond,
	})
	if err := cluster.FailNode(1); err != nil {
		t.Fatal(err)
	}
	// Let the failure detector notice before tearing down.
	time.Sleep(100 * time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := cluster.Shutdown(ctx); err != nil && ctx.Err() != nil {
		t.Fatalf("Shutdown after node loss hung: %v", err)
	}
}

// TestClusterSurvivesChaos: with seeded frame drop, duplication and
// reordering injected under the reliability layer, a full workload of
// reads and writes stays byte-correct and the fault counters prove the
// chaos actually happened.
func TestClusterSurvivesChaos(t *testing.T) {
	cluster := deployFault(t, 3, autodist.RewriteOptions{}, autodist.Config{
		K:               3,
		FailureRecovery: true,
		ChaosSeed:       7,
		ChaosDrop:       0.02,
		ChaosDup:        0.05,
		ChaosReorder:    0.05,
	})
	defer cluster.Shutdown(context.Background())

	if v, _ := invokeInt(t, cluster, "suma"); v != 100 {
		t.Fatalf("suma() under chaos = %d, want 100", v)
	}
	for i := 0; i < 10; i++ {
		if v, _ := invokeInt(t, cluster, "puta", 0, 50+i); v != int64(50+i) {
			t.Fatalf("puta(0,%d) under chaos = %d", 50+i, v)
		}
		if v, _ := invokeInt(t, cluster, "geta", 0); v != int64(50+i) {
			t.Fatalf("geta(0) under chaos = %d, want %d", v, 50+i)
		}
	}
	if v, _ := invokeInt(t, cluster, "suma"); v != 149 {
		t.Fatalf("suma() after chaos writes = %d, want 149", v)
	}
	if v, _ := invokeInt(t, cluster, "sumb"); v != 100 {
		t.Fatalf("sumb() under chaos = %d, want 100", v)
	}
	s := cluster.Stats()
	if s.Retransmits+s.Recoveries == 0 {
		t.Error("chaos injection left no trace in the fault counters")
	}
	if s.PromotedReplicas != 0 {
		t.Errorf("chaos (no kill) caused %d spurious promotions", s.PromotedReplicas)
	}
}
