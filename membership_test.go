package autodist_test

// Elastic membership through the public API: a node joins a deployed
// cluster while invocations are in flight, starts serving migrated
// objects immediately, and later drains back out — with every response
// identical to what a fixed cluster would have returned.

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"autodist"
)

// elasticSource is the scale-out workload: a bank of eight independent
// counters, so admission has a population of migratable objects and
// concurrent traffic exercises many homes at once.
const elasticSource = `
class Cnt {
	int v;
	Cnt(int v) { this.v = v; }
	int get() { return this.v; }
	int add(int d) { this.v = this.v + d; return this.v; }
}
class Main {
	static Cnt c0; static Cnt c1; static Cnt c2; static Cnt c3;
	static Cnt c4; static Cnt c5; static Cnt c6; static Cnt c7;
	static void main() {
		Main.c0 = new Cnt(0); Main.c1 = new Cnt(0);
		Main.c2 = new Cnt(0); Main.c3 = new Cnt(0);
		Main.c4 = new Cnt(0); Main.c5 = new Cnt(0);
		Main.c6 = new Cnt(0); Main.c7 = new Cnt(0);
	}
	static Cnt pick(int i) {
		if (i == 0) { return Main.c0; }
		if (i == 1) { return Main.c1; }
		if (i == 2) { return Main.c2; }
		if (i == 3) { return Main.c3; }
		if (i == 4) { return Main.c4; }
		if (i == 5) { return Main.c5; }
		if (i == 6) { return Main.c6; }
		return Main.c7;
	}
	static int get(int i) { return Main.pick(i).get(); }
	static int add(int i, int d) { return Main.pick(i).add(d); }
}
`

// buildElasticDist compiles the scale-out workload adaptively, with
// the counters pinned on node 1 so traffic crosses the wire.
func buildElasticDist(k int) (*autodist.Distribution, error) {
	prog, err := autodist.CompileString(elasticSource)
	if err != nil {
		return nil, err
	}
	an, err := prog.Analyze()
	if err != nil {
		return nil, err
	}
	plan, err := an.Partition(k, autodist.PartitionOptions{Seed: 1, Epsilon: 0.6})
	if err != nil {
		return nil, err
	}
	for _, v := range an.Result.ODG.Graph.Vertices() {
		v.Part = 0
	}
	for _, s := range an.Result.ODG.Sites {
		if s.Allocated == "Cnt" {
			an.Result.ODG.Graph.Vertex(s.Node).Part = 1 % k
		}
	}
	return plan.RewriteWith(autodist.RewriteOptions{Adaptive: true})
}

// TestElasticJoinUnderLiveTraffic is the tentpole scenario: deploy two
// nodes, keep invocations flowing, admit a third node mid-stream, and
// require (a) the join completes inside a second, (b) no invocation
// fails or returns a wrong value across the transition, and (c) the
// joiner actually received objects. Then drain the joiner back out
// under the same rules.
func TestElasticJoinUnderLiveTraffic(t *testing.T) {
	dist, err := buildElasticDist(2)
	if err != nil {
		t.Fatal(err)
	}
	cluster, err := dist.Deploy(autodist.Config{Adaptive: true, AdaptEvery: 8, Elastic: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cluster.Kill)
	if _, err := cluster.Invoke("main"); err != nil {
		t.Fatal(err)
	}

	// Background traffic: four workers, each owning two counters so
	// the expected totals are deterministic per counter. Every add's
	// return value is checked against the running tally — a response
	// that diverges from single-cluster semantics fails immediately.
	const workers = 4
	stop := make(chan struct{})
	errs := make(chan error, workers)
	var wg sync.WaitGroup
	totals := make([]int64, 8)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			a, b := int64(2*w), int64(2*w+1)
			for n := int64(1); ; n++ {
				for _, i := range []int64{a, b} {
					res, err := cluster.Invoke("add", i, int64(1))
					if err != nil {
						errs <- fmt.Errorf("add(%d) during transition: %w", i, err)
						return
					}
					totals[i]++
					if got := res.Value.(int64); got != totals[i] {
						errs <- fmt.Errorf("add(%d) = %d, want %d", i, got, totals[i])
						return
					}
				}
				select {
				case <-stop:
					return
				default:
				}
			}
		}(w)
	}

	// Let the workload cross a few adaptation epochs, then scale out.
	time.Sleep(50 * time.Millisecond)
	start := time.Now()
	rank, err := cluster.Join()
	joined := time.Since(start)
	if err != nil {
		t.Fatalf("Join: %v", err)
	}
	if rank != 2 {
		t.Fatalf("joined rank %d, want 2", rank)
	}
	if joined > time.Second {
		t.Errorf("join took %v, want < 1s", joined)
	}

	// Keep the traffic flowing against the grown cluster, then stop.
	time.Sleep(50 * time.Millisecond)
	close(stop)
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}

	// Every counter reads back exactly the sum of its acknowledged
	// adds: migration moved state, never duplicated or dropped it.
	for i := int64(0); i < 8; i++ {
		res, err := cluster.Invoke("get", i)
		if err != nil {
			t.Fatalf("get(%d): %v", i, err)
		}
		if got := res.Value.(int64); got != totals[i] {
			t.Errorf("counter %d reads %d, want %d", i, got, totals[i])
		}
	}
	stats := cluster.Stats()
	if stats.Joins != 1 {
		t.Errorf("Stats.Joins = %d, want 1", stats.Joins)
	}
	if stats.Migrations == 0 {
		t.Error("no migrations: the joiner was admitted but never seeded with objects")
	}

	// Scale back in: the joiner drains, its objects come home, and the
	// counters still read the same totals.
	if err := cluster.Drain(2); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	for i := int64(0); i < 8; i++ {
		res, err := cluster.Invoke("get", i)
		if err != nil {
			t.Fatalf("get(%d) after drain: %v", i, err)
		}
		if got := res.Value.(int64); got != totals[i] {
			t.Errorf("counter %d reads %d after drain, want %d", i, got, totals[i])
		}
	}
	if stats := cluster.Stats(); stats.Drains != 1 {
		t.Errorf("Stats.Drains = %d, want 1", stats.Drains)
	}
}

// TestJoinRequiresElastic pins the opt-in: a deployment without
// Config.Elastic refuses Join and Drain outright.
func TestJoinRequiresElastic(t *testing.T) {
	dist, err := buildElasticDist(2)
	if err != nil {
		t.Fatal(err)
	}
	cluster, err := dist.Deploy(autodist.Config{Adaptive: true, AdaptEvery: 8})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cluster.Kill)
	if _, err := cluster.Invoke("main"); err != nil {
		t.Fatal(err)
	}
	if _, err := cluster.Join(); err == nil || !strings.Contains(err.Error(), "Elastic") {
		t.Errorf("Join without Elastic: %v, want refusal", err)
	}
	if err := cluster.Drain(1); err == nil || !strings.Contains(err.Error(), "Elastic") {
		t.Errorf("Drain without Elastic: %v, want refusal", err)
	}
}

// TestElasticConfigValidation pins the config surface: elasticity
// needs a distributed adaptive deployment, and MaxRanks only means
// something when elasticity is on and leaves room to grow.
func TestElasticConfigValidation(t *testing.T) {
	cases := []struct {
		name string
		cfg  autodist.Config
		ok   bool
	}{
		{"elastic adaptive", autodist.Config{K: 2, Adaptive: true, Elastic: true}, true},
		{"elastic with max ranks", autodist.Config{K: 2, Adaptive: true, Elastic: true, MaxRanks: 8}, true},
		{"elastic static", autodist.Config{K: 2, Elastic: true}, false},
		{"elastic sequential", autodist.Config{K: 1, Adaptive: true, Elastic: true}, false},
		{"max ranks without elastic", autodist.Config{K: 2, MaxRanks: 8}, false},
		{"max ranks below k", autodist.Config{K: 4, Adaptive: true, Elastic: true, MaxRanks: 2}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.cfg.Validate()
			if tc.ok && err != nil {
				t.Errorf("Validate() = %v, want nil", err)
			}
			if !tc.ok && err == nil {
				t.Error("Validate() = nil, want error")
			}
		})
	}
	// Deploy enforces the same contract against the distribution: an
	// elastic deployment of a static rewrite is refused.
	prog, err := autodist.CompileString(elasticSource)
	if err != nil {
		t.Fatal(err)
	}
	an, err := prog.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	plan, err := an.Partition(2, autodist.PartitionOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	dist, err := plan.Rewrite()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dist.Deploy(autodist.Config{Elastic: true}); err == nil {
		t.Error("Deploy accepted Elastic on a static distribution")
	}
}
