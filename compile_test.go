package autodist_test

// Differential correctness suite for the tiered-execution engine: every
// workload must behave observably identically with Compile on and off —
// byte-identical output and identical distribution counters (messages,
// bytes, cache/replica/retained hits, migrations) — because compiled
// code deopts to the interpreter at every access-mediated site, so the
// coherence, replication and migration machinery sees the exact same
// request stream. The suite also composes the compiled tier with the
// adaptive, replication and fault-recovery subsystems and pins that
// deopts actually happen there.

import (
	"context"
	"testing"
	"time"

	"autodist"
	"autodist/internal/experiments"
)

// compileOn returns cfg's Compile-enabled twin at the most aggressive
// threshold, so even short runs promote eagerly.
func compileOn(cfg autodist.Config) autodist.Config {
	cfg.Compile = true
	cfg.CompileThreshold = 1
	return cfg
}

// runDiffPair runs one distributed workload twice — Compile off, then
// on — and requires identical observable behaviour plus evidence the
// compiled tier actually ran.
func runDiffPair(t *testing.T, build func() (*autodist.Distribution, error), cfg autodist.Config) {
	t.Helper()
	dist, err := build()
	if err != nil {
		t.Fatal(err)
	}
	off, err := dist.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	dist, err = build()
	if err != nil {
		t.Fatal(err)
	}
	on, err := dist.Run(compileOn(cfg))
	if err != nil {
		t.Fatal(err)
	}
	if off.Output != on.Output {
		t.Errorf("output diverged:\ncompile off: %q\ncompile on:  %q", off.Output, on.Output)
	}
	counters := []struct {
		name    string
		off, on int64
	}{
		{"Messages", off.Messages, on.Messages},
		{"BytesSent", off.BytesSent, on.BytesSent},
		{"CacheHits", off.CacheHits, on.CacheHits},
		{"AsyncCalls", off.AsyncCalls, on.AsyncCalls},
		{"Migrations", off.Migrations, on.Migrations},
		{"Forwards", off.Forwards, on.Forwards},
		{"ReplicaHits", off.ReplicaHits, on.ReplicaHits},
		{"ReplicaFetches", off.ReplicaFetches, on.ReplicaFetches},
		{"Invalidations", off.Invalidations, on.Invalidations},
		{"RetainedHits", off.RetainedHits, on.RetainedHits},
	}
	for _, c := range counters {
		if c.off != c.on {
			t.Errorf("%s diverged: compile off %d, on %d", c.name, c.off, c.on)
		}
	}
	if off.CompiledMethods != 0 || off.TierUps != 0 || off.Deopts != 0 {
		t.Errorf("Compile off reported tier activity: %d compiled, %d tier-ups, %d deopts",
			off.CompiledMethods, off.TierUps, off.Deopts)
	}
	if on.CompiledMethods == 0 || on.TierUps == 0 {
		t.Errorf("Compile on never ran compiled code: %d compiled, %d tier-ups",
			on.CompiledMethods, on.TierUps)
	}
}

// TestCompileDifferentialQuickstart: the bank example (the quickstart
// workload) distributed 2-way under the partitioner's own placement.
func TestCompileDifferentialQuickstart(t *testing.T) {
	runDiffPair(t, func() (*autodist.Distribution, error) {
		prog, err := autodist.CompileString(experiments.BankExampleSource)
		if err != nil {
			return nil, err
		}
		an, err := prog.Analyze()
		if err != nil {
			return nil, err
		}
		plan, err := an.Partition(2, autodist.PartitionOptions{Seed: 1, Epsilon: 0.6})
		if err != nil {
			return nil, err
		}
		return plan.Rewrite()
	}, autodist.Config{})
}

// TestCompileDifferentialPhaseShift: the adaptive-repartitioning
// showcase with live migrations — compiled frames are invalidated on
// every ownership change, and the migration counters must not move.
func TestCompileDifferentialPhaseShift(t *testing.T) {
	runDiffPair(t, func() (*autodist.Distribution, error) {
		prog, err := autodist.CompileString(experiments.PhaseShiftSource)
		if err != nil {
			return nil, err
		}
		an, err := prog.Analyze()
		if err != nil {
			return nil, err
		}
		plan, err := an.Partition(2, autodist.PartitionOptions{Seed: 1, Epsilon: 0.6})
		if err != nil {
			return nil, err
		}
		return plan.RewriteAdaptive()
	}, autodist.Config{})
}

// TestCompileDifferentialReadMostly: the read-replication showcase with
// the coherence protocol on — replica hit/fetch/invalidation counters
// must be identical, since every mediated access deopts.
func TestCompileDifferentialReadMostly(t *testing.T) {
	const k = 3
	runDiffPair(t, func() (*autodist.Distribution, error) {
		prog, err := autodist.CompileString(experiments.ReadMostlySource)
		if err != nil {
			return nil, err
		}
		an, err := prog.Analyze()
		if err != nil {
			return nil, err
		}
		plan, err := an.Partition(k, autodist.PartitionOptions{Seed: 1, Epsilon: 0.6})
		if err != nil {
			return nil, err
		}
		// The showcase placement: directory on node 0, workers spread
		// over the reader nodes.
		for _, v := range an.Result.ODG.Graph.Vertices() {
			v.Part = 0
		}
		reader := 1
		for _, s := range an.Result.ODG.Sites {
			if s.Allocated == "Worker" {
				an.Result.ODG.Graph.Vertex(s.Node).Part = reader
				reader++
				if reader >= k {
					reader = 1
				}
			}
		}
		return plan.RewriteWith(autodist.RewriteOptions{Replicate: true})
	}, autodist.Config{Replicate: true})
}

// TestCompileDifferentialService: a resident cluster serving the same
// invocation sequence with Compile on and off — per-invocation values,
// message counts and retained-state hits must all match, and the
// compiled runs must report tier activity on the hot entrypoint.
func TestCompileDifferentialService(t *testing.T) {
	type obs struct {
		vals     []int64
		messages int64
		retained int64
	}
	drive := func(cfg autodist.Config) (obs, int64) {
		cluster := deployService(t, 2, cfg)
		defer cluster.Shutdown(context.Background())
		var o obs
		var tierUps int64
		invoke := func(entry string, args ...autodist.Value) {
			v, res := invokeInt(t, cluster, entry, args...)
			o.vals = append(o.vals, v)
			o.messages += res.Messages
			o.retained += res.RetainedHits
			tierUps += res.TierUps
		}
		for i := 0; i < 3; i++ {
			invoke("work", 50)
			invoke("sum")
			invoke("get", 1)
		}
		invoke("put", 0, 77)
		invoke("sum")
		return o, tierUps
	}
	off, offTierUps := drive(autodist.Config{})
	on, onTierUps := drive(compileOn(autodist.Config{}))
	if len(off.vals) != len(on.vals) {
		t.Fatalf("invocation counts diverged: %d vs %d", len(off.vals), len(on.vals))
	}
	for i := range off.vals {
		if off.vals[i] != on.vals[i] {
			t.Errorf("invocation %d diverged: compile off %d, on %d", i, off.vals[i], on.vals[i])
		}
	}
	if off.messages != on.messages {
		t.Errorf("messages diverged: compile off %d, on %d", off.messages, on.messages)
	}
	if off.retained != on.retained {
		t.Errorf("retained hits diverged: compile off %d, on %d", off.retained, on.retained)
	}
	if offTierUps != 0 {
		t.Errorf("Compile off reported %d tier-ups", offTierUps)
	}
	if onTierUps == 0 {
		t.Error("Compile on never entered compiled code on the service workload")
	}
}

// TestCompileDeoptWithReplicationAndFailover composes the compiled tier
// with replication and fault recovery: the hot entrypoints run
// compiled, every mediated access deopts (so Deopts must be counted),
// and killing the owner node still promotes the replica and returns
// byte-identical results.
func TestCompileDeoptWithReplicationAndFailover(t *testing.T) {
	cluster := deployFault(t, 3, autodist.RewriteOptions{Replicate: true}, compileOn(autodist.Config{
		K:                 3,
		Replicate:         true,
		FailureRecovery:   true,
		HeartbeatInterval: 15 * time.Millisecond,
	}))
	defer cluster.Shutdown(context.Background())

	// Warm both the replica and the method profiles.
	for i := 0; i < 3; i++ {
		if v, _ := invokeInt(t, cluster, "suma"); v != 100 {
			t.Fatalf("suma() warm-up = %d, want 100", v)
		}
	}
	stats := cluster.Stats()
	if stats.TierUps == 0 {
		t.Errorf("no tier-ups after warm-up: %+v", stats)
	}
	if stats.Deopts == 0 {
		t.Errorf("no deopts despite access-mediated reads: %+v", stats)
	}
	if err := cluster.FailNode(1); err != nil {
		t.Fatal(err)
	}
	if v, _ := invokeInt(t, cluster, "suma"); v != 100 {
		t.Fatalf("suma() after owner death = %d, want 100", v)
	}
	deadline := time.Now().Add(5 * time.Second)
	for cluster.Stats().PromotedReplicas == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("no replica promotion within 5s: stats %+v", cluster.Stats())
		}
		time.Sleep(10 * time.Millisecond)
	}
	if v, _ := invokeInt(t, cluster, "puta", 0, 11); v != 11 {
		t.Fatalf("puta(0,11) on the promoted owner = %d, want 11", v)
	}
	if v, _ := invokeInt(t, cluster, "suma"); v != 101 {
		t.Fatalf("suma() after write to promoted owner = %d, want 101", v)
	}
}

// TestCompileSequentialIdentical: Compile off and on must produce
// byte-identical output on the sequential (K=1) path too, and the
// compiled run must report its tier counters through RunResult.
func TestCompileSequentialIdentical(t *testing.T) {
	const src = `
class Main {
	static int work(int n) {
		int s = 0;
		for (int i = 0; i < n; i++) { s = s + i * 3 - (i >> 1); }
		return s;
	}
	static void main() {
		int total = 0;
		for (int r = 0; r < 50; r++) { total = total + Main.work(200); }
		System.println("total=" + total);
	}
}`
	prog, err := autodist.CompileString(src)
	if err != nil {
		t.Fatal(err)
	}
	off, err := prog.Run(autodist.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	on, err := prog.Run(compileOn(autodist.RunOptions{}))
	if err != nil {
		t.Fatal(err)
	}
	if off.Output != on.Output {
		t.Errorf("sequential output diverged: %q vs %q", off.Output, on.Output)
	}
	if off.TierUps != 0 || off.CompiledMethods != 0 {
		t.Errorf("Compile off reported tier activity: %+v", off)
	}
	if on.TierUps == 0 || on.CompiledMethods == 0 {
		t.Errorf("Compile on reported no tier activity: tierUps=%d compiled=%d", on.TierUps, on.CompiledMethods)
	}
}
