// Package autodist is a compiler and runtime infrastructure for
// automatic program distribution — a from-scratch Go reproduction of
// Diaconescu et al., "A Compiler and Runtime Infrastructure for
// Automatic Program Distribution" (IPPS 2005).
//
// The system accepts a monolithic program written in MJ (a Java-like
// object language), compiles it to bytecode, statically approximates the
// program's object dependence graph, partitions that graph under
// multi-constraint resource weights (memory/CPU/battery), rewrites the
// bytecode of each partition so cross-partition dependences become
// DependentObject message exchanges, and executes the parts on a set of
// communicating virtual machines — over in-process channels or TCP, with
// an optional deterministic virtual clock for heterogeneous-node
// experiments.
//
// The five pipeline stages mirror the paper's Figure 1, and the
// compiled distribution is served through a deployment lifecycle:
// Deploy brings the nodes up and keeps them resident, Invoke runs any
// static entrypoint of the main (ExecutionStarter) class — as many
// times as needed, from any goroutine — and Shutdown drains
// outstanding work through the final barrier before stopping:
//
//	src := `... MJ source with a static main() ...`
//	prog, err := autodist.CompileString(src)        // front-end
//	an, err := prog.Analyze()                       // ODG construction
//	plan, err := an.Partition(2, autodist.PartitionOptions{}) // Metis-style
//	dist, err := plan.Rewrite()                     // communication generation
//	cluster, err := dist.Deploy(autodist.Config{})  // resident deployment
//	_, err = cluster.Invoke("main")                 // provision once
//	res, err := cluster.Invoke("lookup", 42)        // serve requests...
//	live := cluster.Stats()                         // live counters, any time
//	err = cluster.Shutdown(ctx)                     // drain + final barrier
//
// Config.MaxConcurrent sets how many invocations run at once: the
// default of 1 serialises them (the paper's single-logical-thread
// protocol, preserved exactly), while N > 1 admits N concurrent
// logical threads — each invocation executes in parallel across the
// cluster with its own thread id on the wire and per-thread contexts
// on every node, synchronising only at per-object access gates.
//
// Coherence state — object placement, forwarding hints, write-once
// caches, read replicas — persists between invocations, so migrations
// and replicas learned serving one request make the next cheaper (the
// RetainedHits counter measures exactly those cross-invocation hits).
// For one-shot batch semantics, Distribution.Run survives as the
// wrapper Deploy → Invoke("main") → Shutdown:
//
//	out, err := dist.Run(autodist.RunOptions{})     // batch execution
//
// Config (alias RunOptions) is the single validated execution
// configuration: Config.Validate is the one source of truth for
// incoherent option combinations, shared with the cmd/jdrun CLI.
//
// Plan.RewriteAdaptive builds the same distribution with the partition
// treated as an initial placement instead of a contract: the runtime
// tracks per-object communication affinity and live-migrates objects
// between nodes mid-run (see RunOptions.AdaptEvery and the Migrations
// and Forwards counters on RunResult).
//
// Plan.RewriteWith composes the modes. RewriteOptions.Replicate stamps
// read-replication access kinds for read-mostly classes; run with
// RunOptions.Replicate, proxies then serve those reads from local
// replica snapshots kept coherent by an invalidate-on-write protocol
// (see the ReplicaHits, ReplicaFetches and Invalidations counters on
// RunResult).
//
// Sequential execution (prog.Run), profiling (prog.Profile), quad-IR
// listings and retargetable x86/StrongARM code generation
// (prog.Disassemble, prog.GenerateAssembly) are available at every
// stage. See README.md for the architecture overview, ARCHITECTURE.md
// for the pipeline walkthrough and wire-protocol reference, and
// EXPERIMENTS.md for the reproduction of the paper's tables and
// figures.
package autodist
