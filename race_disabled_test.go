//go:build !race

package autodist_test

const raceEnabled = false
