package autodist_test

import (
	"strings"
	"testing"

	"autodist"
	"autodist/internal/bench"
)

const demoSource = `
class Greeter {
	string name;
	Greeter(string name) { this.name = name; }
	string greet() { return "hello " + this.name; }
}
class Main {
	static void main() {
		Greeter g = new Greeter("world");
		System.println(g.greet());
	}
}
`

func TestFullPipelineThroughFacade(t *testing.T) {
	prog, err := autodist.CompileString(demoSource)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := prog.Run(autodist.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if seq.Output != "hello world\n" {
		t.Errorf("sequential output = %q", seq.Output)
	}
	an, err := prog.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	plan, err := an.Partition(2, autodist.PartitionOptions{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	dist, err := plan.Rewrite()
	if err != nil {
		t.Fatal(err)
	}
	res, err := dist.Run(autodist.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Output != seq.Output {
		t.Errorf("distributed output %q != sequential %q", res.Output, seq.Output)
	}
}

func TestFacadeVCGAndListings(t *testing.T) {
	prog, err := autodist.CompileString(demoSource)
	if err != nil {
		t.Fatal(err)
	}
	an, err := prog.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	var crg, odg strings.Builder
	if err := an.WriteCRG(&crg); err != nil {
		t.Fatal(err)
	}
	if err := an.WriteODG(&odg); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(crg.String(), "DT_Greeter") || !strings.Contains(odg.String(), "1Greeter") {
		t.Error("VCG outputs incomplete")
	}
	quads, err := prog.Quads("Greeter", "greet")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(quads, "BB0 (ENTRY)") {
		t.Errorf("quads malformed:\n%s", quads)
	}
	for _, target := range autodist.Targets() {
		asm, err := prog.GenerateAssembly("Greeter", "greet", target)
		if err != nil {
			t.Fatal(err)
		}
		if len(asm) < 20 {
			t.Errorf("%s assembly too short:\n%s", target, asm)
		}
	}
	dis := prog.Disassemble("Main", "main")
	if !strings.Contains(dis, "invokespecial Greeter.<init>") {
		t.Errorf("disassembly missing ctor call:\n%s", dis)
	}
}

func TestFacadeProfile(t *testing.T) {
	p, err := bench.Get("method")
	if err != nil {
		t.Fatal(err)
	}
	prog, err := autodist.CompileString(p.Source)
	if err != nil {
		t.Fatal(err)
	}
	prof, res, err := prog.Profile(autodist.ProfileMethodFrequency, autodist.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if prof.Frequency("Methods.instAdd") != 40000 {
		t.Errorf("instAdd frequency = %d", prof.Frequency("Methods.instAdd"))
	}
	if !strings.Contains(res.Output, "method:") {
		t.Errorf("profiled run output = %q", res.Output)
	}
}

func TestFacadeVirtualClockSpeedup(t *testing.T) {
	p, err := bench.Get("crypt")
	if err != nil {
		t.Fatal(err)
	}
	prog, err := autodist.CompileString(p.Source)
	if err != nil {
		t.Fatal(err)
	}
	// Centralized baseline on the slow (800 MHz) node — the paper's
	// §7.2 methodology.
	seq, err := prog.Run(autodist.RunOptions{CPUSpeeds: []float64{800e6}})
	if err != nil {
		t.Fatal(err)
	}
	an, _ := prog.Analyze()
	plan, err := an.Partition(2, autodist.PartitionOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	dist, err := plan.Rewrite()
	if err != nil {
		t.Fatal(err)
	}
	res, err := dist.Run(autodist.RunOptions{
		CPUSpeeds: []float64{1700e6, 800e6},
		Net:       &autodist.NetModel{LatencySec: 100e-6, BytesPerSec: 12.5e6},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Output != seq.Output {
		t.Fatalf("outputs differ: %q vs %q", res.Output, seq.Output)
	}
	if seq.SimSeconds <= 0 || res.SimSeconds <= 0 {
		t.Fatal("virtual clocks did not advance")
	}
	speedup := seq.SimSeconds / res.SimSeconds
	// The paper reports 0.79–1.75; any ratio in a sane band confirms
	// the model wiring (exact values are the Figure 11 bench's job).
	if speedup < 0.1 || speedup > 3.0 {
		t.Errorf("speedup = %.2f, outside sanity band", speedup)
	}
}
