//go:build race

package autodist_test

// raceEnabled reports whether the race detector is compiled in; the
// throughput-scaling guard skips under it (the detector's
// happens-before tracking serialises execution and voids the ratio).
const raceEnabled = true
