// Command jdrun executes an MJ program: sequentially on one VM, or
// automatically distributed across k nodes (in-process or local TCP),
// either as a one-shot batch run or as a resident service.
//
// Usage:
//
//	jdrun prog.mj                      # sequential
//	jdrun -k 2 prog.mj                 # distributed, in-process fabric
//	jdrun -k 2 -tcp prog.mj            # distributed over local TCP
//	jdrun -k 2 -sim prog.mj            # report simulated times (1.7GHz + 800MHz nodes)
//	jdrun -k 2 -adaptive prog.mj       # adaptive repartitioning with live migration
//	jdrun -k 3 -replicate prog.mj      # read-replication with invalidate-on-write
//	jdrun -k 2 -serve prog.mj          # deploy resident, read invocations from stdin
//	jdrun -k 2 -serve -concurrency 8 prog.mj  # dispatch stdin invocations from 8 workers
//	jdrun -k 2 -tcp -listen 127.0.0.1:0 -concurrency 8 prog.mj  # network invocation server
//	jdrun -k 3 -replicate -recover prog.mj                      # fault-tolerant deployment
//	jdrun -k 3 -recover -chaos drop=0.01,seed=7 prog.mj         # + deterministic fault injection
//	jdrun -k 2 -adaptive -elastic -listen 127.0.0.1:7070 prog.mj  # elastic: nodes may join/leave live
//	jdrun -join 127.0.0.1:7070                                  # grow that cluster by one node
//	jdrun -drain 127.0.0.1:7070 -rank 2                         # retire rank 2 gracefully
//
// -serve deploys the distribution and keeps it serving: each stdin
// line names a static entrypoint of the main class plus arguments
// ("main", "put 2 40", …), invoked on the live cluster; results print
// to stdout and per-invocation traffic counters to stderr. EOF drains
// the cluster and prints the cumulative summary. Blank lines and lines
// starting with '#' are skipped. -concurrency N dispatches invocations
// from a pool of N workers — the cluster admits them as N concurrent
// logical threads (Config.MaxConcurrent) — and prints per-thread
// counters in the summary; the default of 1 keeps the REPL strictly
// sequential. The first line (conventionally main, the provisioning
// step) always completes before the pool dispatches the rest, so later
// invocations can depend on the state it creates.
//
// -listen addr deploys resident like -serve but accepts invocations
// over TCP instead of stdin: each accepted connection carries
// newline-delimited invocation lines in the -serve syntax and receives
// one reply line per request ("sum = 100", "put ok", "err: ..."), in
// order per connection. Connections are served concurrently; the
// cluster admits up to -concurrency invocations at once. Two meta
// commands serve load-generation harnesses (cmd/loadgen): "!stats"
// returns a JSON snapshot of the cluster's cumulative counters, and
// "!shutdown" drains the cluster, prints the summary and exits. The
// bound address is announced on stderr ("listening on ...") so
// harnesses can pass port 0.
//
// -recover wraps every endpoint in the reliability layer
// (sequence-numbered frames, ack-driven retransmission, heartbeat
// failure detection) and arms the runtime's recovery protocol: when a
// node dies, survivors promote their replicas of its objects and
// failed invocations are re-driven with exactly-once effects.
// -heartbeat and -retransmit tune the detection and resend timers;
// -chaos injects deterministic seeded faults (frame drop / duplicate /
// reorder probabilities) under the reliability layer, which must heal
// them — the summary's "fault tolerance" line reports how much healing
// happened.
//
// -tcp-nocoalesce and -tcp-compress tune the TCP fabric (A/B levers
// for the transport benchmarks): the former restores one Write syscall
// per frame, the latter negotiates DEFLATE segment framing.
//
// -elastic (requires -adaptive and a resident mode) deploys the
// cluster with membership enabled: "!join" on a -listen connection —
// or jdrun -join addr from another shell — admits a fresh node while
// invocations keep flowing, seeding it with a share of the live
// objects; "!drain N" / jdrun -drain addr -rank N migrates rank N's
// objects away and retires it without a false failure detection.
// -max-ranks bounds how far the rank space can grow.
//
// -adaptive=off and -replicate=off (the defaults) keep today's static
// behaviour exactly — the partition is a compile-time contract and
// every access pays its remote round-trip — which is what A/B runs
// compare against. -replicate composes with -adaptive. Incoherent flag
// combinations (e.g. -unoptimized with -replicate, or distribution
// flags without -k ≥ 2) fail fast with an error: the checks live in
// autodist's Config.Validate, the single source of truth shared with
// the library API.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"strconv"
	"strings"
	"sync"

	"autodist"
	"autodist/internal/experiments"
)

func main() {
	k := flag.Int("k", 1, "number of nodes (1 = sequential)")
	seed := flag.Int64("seed", 1, "partitioner seed")
	eps := flag.Float64("eps", 0.6, "partitioner imbalance tolerance")
	tcp := flag.Bool("tcp", false, "use local TCP transport instead of in-process channels")
	tcpNoCoalesce := flag.Bool("tcp-nocoalesce", false, "disable the TCP write combiner (one Write per frame; A/B lever)")
	tcpCompress := flag.Bool("tcp-compress", false, "negotiate DEFLATE segment framing on TCP connections")
	unopt := flag.Bool("unoptimized", false, "disable message-exchange optimisations (caching/async/batching) for A/B runs")
	nofuse := flag.Bool("nofuse", false, "disable access fusion (one DEPENDENCE round trip per remote access; A/B lever)")
	adaptive := flag.Bool("adaptive", false, "treat the partition as an initial placement: migrate objects to their observed communication affinity at run time")
	adaptEvery := flag.Int("adapt-every", 0, "adaptation epoch in synchronous requests (0 = default)")
	replicate := flag.Bool("replicate", false, "replicate read-mostly objects onto reader nodes (invalidate-on-write coherence)")
	sim := flag.Bool("sim", false, "enable the virtual clock (paper's heterogeneous testbed)")
	serve := flag.Bool("serve", false, "deploy the cluster resident and invoke entrypoints read from stdin")
	listen := flag.String("listen", "", "deploy the cluster resident and serve invocations over TCP on this address")
	concurrency := flag.Int("concurrency", 1, "worker-pool size for -serve/-listen: invocations run as this many concurrent logical threads")
	recover := flag.Bool("recover", false, "enable fault tolerance: reliable frames with retransmission, heartbeat failure detection, replica promotion on node loss")
	heartbeat := flag.Duration("heartbeat", 0, "liveness-probe period for -recover (0 = default)")
	retransmit := flag.Duration("retransmit", 0, "base ack timeout before a frame is resent under -recover (0 = default)")
	chaos := flag.String("chaos", "", `deterministic fault injection under -recover: "drop=0.01,dup=0.01,reorder=0.01,seed=7"`)
	compileTier := flag.Bool("compile", false, "tiered execution: compile hot methods from quads to Go closures (deopt keeps behaviour identical)")
	compileThreshold := flag.Int("compile-threshold", 0, "hotness count that promotes a method under -compile (0 = default)")
	elastic := flag.Bool("elastic", false, "allow nodes to join and leave the resident cluster at run time (requires -adaptive and -serve/-listen)")
	maxRanks := flag.Int("max-ranks", 0, "rank-space ceiling for -elastic (0 = default)")
	join := flag.String("join", "", "client mode: ask the jdrun -listen -elastic server at this address to grow the cluster by one node, then exit")
	drain := flag.String("drain", "", "client mode: ask the jdrun -listen -elastic server at this address to drain -rank, then exit")
	drainRank := flag.Int("rank", -1, "rank to retire with -drain")
	flag.Parse()
	usageErr := func(msg string) {
		fmt.Fprintln(os.Stderr, "jdrun:", msg)
		os.Exit(2)
	}
	die := func(err error) {
		fmt.Fprintln(os.Stderr, "jdrun:", err)
		os.Exit(1)
	}

	// Client modes talk to an already-running server and exit; they
	// take no program.
	if *join != "" || *drain != "" {
		if *join != "" && *drain != "" {
			usageErr("-join and -drain are mutually exclusive")
		}
		if flag.NArg() != 0 {
			usageErr("-join/-drain take no program arguments")
		}
		line := "!join"
		if *drain != "" {
			if *drainRank < 0 {
				usageErr("-drain needs -rank")
			}
			line = fmt.Sprintf("!drain %d", *drainRank)
		}
		addr := *join
		if addr == "" {
			addr = *drain
		}
		if err := clientCommand(addr, line); err != nil {
			die(err)
		}
		return
	}
	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}

	// One validated configuration instead of hand-rolled pairwise
	// checks: Config.Validate rejects every incoherent combination
	// (-adapt-every without -adaptive, -unoptimized with -replicate,
	// distribution flags with k = 1, …).
	cfg := autodist.Config{
		K: *k, Out: os.Stdout, TCP: *tcp, Unoptimized: *unopt, NoFuse: *nofuse,
		TCPNoCoalesce: *tcpNoCoalesce, TCPCompress: *tcpCompress,
		Adaptive: *adaptive, AdaptEvery: *adaptEvery, Replicate: *replicate,
		MaxConcurrent:   *concurrency,
		FailureRecovery: *recover, HeartbeatInterval: *heartbeat, RetransmitTimeout: *retransmit,
		Compile: *compileTier, CompileThreshold: *compileThreshold,
		Elastic: *elastic, MaxRanks: *maxRanks,
	}
	if *chaos != "" {
		if err := parseChaos(*chaos, &cfg); err != nil {
			usageErr(err.Error())
		}
	}
	if *sim {
		speeds := make([]float64, *k)
		for i := range speeds {
			speeds[i] = experiments.ComputeNodeHz
		}
		speeds[0] = experiments.ServiceNodeHz
		cfg.CPUSpeeds = speeds
		cfg.Net = &autodist.NetModel{
			LatencySec:  experiments.EthernetLatencySec,
			BytesPerSec: experiments.EthernetBytesPerSec,
		}
	}
	if err := cfg.Validate(); err != nil {
		usageErr(strings.TrimPrefix(err.Error(), "autodist: "))
	}
	if *serve && *listen != "" {
		usageErr("-serve and -listen are mutually exclusive")
	}
	if (*serve || *listen != "") && *k <= 1 {
		usageErr("-serve/-listen require a distributed run (-k ≥ 2)")
	}
	if *concurrency > 1 && !*serve && *listen == "" {
		usageErr("-concurrency only applies to -serve/-listen (a batch run invokes main() once)")
	}
	if *elastic && !*serve && *listen == "" {
		usageErr("-elastic only applies to -serve/-listen (a batch run has nothing to join)")
	}

	var srcs []string
	for _, path := range flag.Args() {
		data, err := os.ReadFile(path)
		if err != nil {
			die(err)
		}
		srcs = append(srcs, string(data))
	}
	prog, err := autodist.CompileString(srcs...)
	if err != nil {
		die(err)
	}

	if *k <= 1 {
		res, err := prog.Run(cfg)
		if err != nil {
			die(err)
		}
		if *compileTier {
			fmt.Fprintf(os.Stderr, "tiered execution: %d compiled methods, %d tier-ups, %d compiled entries, %d deopts\n",
				res.CompiledMethods, res.TierUps, res.CompiledEntries, res.Deopts)
		}
		if *sim {
			fmt.Fprintf(os.Stderr, "simulated time: %.6fs (wall %v)\n", res.SimSeconds, res.Wall)
		}
		return
	}
	an, err := prog.Analyze()
	if err != nil {
		die(err)
	}
	plan, err := an.Partition(*k, autodist.PartitionOptions{Seed: *seed, Epsilon: *eps})
	if err != nil {
		die(err)
	}
	var dist *autodist.Distribution
	if *adaptive || *replicate {
		dist, err = plan.RewriteWith(autodist.RewriteOptions{Adaptive: *adaptive, Replicate: *replicate})
	} else {
		dist, err = plan.Rewrite()
	}
	if err != nil {
		die(err)
	}

	if *serve {
		if err := serveLoop(dist, cfg); err != nil {
			die(err)
		}
		return
	}
	if *listen != "" {
		if err := listenLoop(dist, cfg, *listen); err != nil {
			die(err)
		}
		return
	}

	res, err := dist.Run(cfg)
	if err != nil {
		die(err)
	}
	printSummary(*k, res, *adaptive, *replicate, *recover, *sim, *compileTier, *elastic, -1)
}

// serveLoop deploys the distribution resident and invokes one
// entrypoint per stdin line until EOF, then drains and prints the
// cumulative summary. With cfg.MaxConcurrent > 1 the lines dispatch to
// a worker pool of that size — the cluster runs them as concurrent
// logical threads — and the summary includes per-worker (per-thread)
// counters; with the default of 1 the loop is strictly sequential and
// its output deterministic.
func serveLoop(dist *autodist.Distribution, cfg autodist.Config) error {
	cluster, err := dist.Deploy(cfg)
	if err != nil {
		return err
	}
	workers := cfg.MaxConcurrent
	if workers < 1 {
		workers = 1
	}
	fmt.Fprintf(os.Stderr, "deployed %d nodes; entrypoints: %s\n",
		cfg.K, strings.Join(cluster.Entrypoints(), " "))

	// workerStats are one REPL worker's counters: with -concurrency N
	// each worker drives its own logical thread through the cluster.
	type workerStats struct {
		invocations int64
		messages    int64
		bytes       int64
		failures    int64
	}
	stats := make([]workerStats, workers)
	var outMu sync.Mutex
	invoke := func(w int, line string) {
		fields := strings.Fields(line)
		args := make([]autodist.Value, 0, len(fields)-1)
		for _, f := range fields[1:] {
			args = append(args, parseArg(f))
		}
		res, err := cluster.Invoke(fields[0], args...)
		outMu.Lock()
		defer outMu.Unlock()
		if err != nil {
			stats[w].failures++
			fmt.Fprintln(os.Stderr, "jdrun:", err)
			return
		}
		stats[w].invocations++
		stats[w].messages += res.Messages
		stats[w].bytes += res.BytesSent
		if res.Value != nil {
			fmt.Printf("%s = %v\n", res.Entry, res.Value)
		} else {
			fmt.Printf("%s ok\n", res.Entry)
		}
		fmt.Fprintf(os.Stderr, "  [%d msgs, %d bytes, %d cache hits (%d retained), %d replica hits, %d migrations, %v]\n",
			res.Messages, res.BytesSent, res.CacheHits, res.RetainedHits,
			res.ReplicaHits, res.Migrations, res.Wall)
	}

	lines := make(chan string)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for line := range lines {
				invoke(w, line)
			}
		}(w)
	}

	sc := bufio.NewScanner(os.Stdin)
	first := true
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if first {
			// The first invocation (conventionally main, the
			// provisioning step) runs to completion before the pool
			// dispatches anything — later lines may depend on the
			// state it creates.
			invoke(0, line)
			first = false
			continue
		}
		lines <- line
	}
	close(lines)
	wg.Wait()
	if err := sc.Err(); err != nil {
		_ = cluster.Shutdown(context.Background())
		return err
	}
	served := cluster.Invocations()
	if err := cluster.Shutdown(context.Background()); err != nil {
		return err
	}
	if workers > 1 {
		for w := range stats {
			fmt.Fprintf(os.Stderr, "thread %d: %d invocations, %d messages, %d payload bytes, %d failures\n",
				w, stats[w].invocations, stats[w].messages, stats[w].bytes, stats[w].failures)
		}
	}
	printSummary(cfg.K, cluster.Stats(), cfg.Adaptive, cfg.Replicate, cfg.FailureRecovery, len(cfg.CPUSpeeds) > 0, cfg.Compile, cfg.Elastic, served)
	return nil
}

// clientCommand sends one meta command to a running jdrun -listen
// server, prints the reply line, and reports server-side refusals as
// errors.
func clientCommand(addr, line string) error {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return err
	}
	defer c.Close()
	if _, err := fmt.Fprintln(c, line); err != nil {
		return err
	}
	reply, err := bufio.NewReader(c).ReadString('\n')
	if err != nil {
		return err
	}
	reply = strings.TrimSpace(reply)
	if strings.HasPrefix(reply, "err:") {
		return fmt.Errorf("server: %s", strings.TrimSpace(strings.TrimPrefix(reply, "err:")))
	}
	fmt.Println(reply)
	return nil
}

// parseChaos applies a "drop=0.01,dup=0.01,reorder=0.01,seed=7" spec
// to the chaos knobs; range checks stay in Config.Validate.
func parseChaos(spec string, cfg *autodist.Config) error {
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		key, val, ok := strings.Cut(part, "=")
		if !ok {
			return fmt.Errorf("-chaos: %q is not key=value", part)
		}
		if key == "seed" {
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return fmt.Errorf("-chaos: bad seed %q", val)
			}
			cfg.ChaosSeed = n
			continue
		}
		p, err := strconv.ParseFloat(val, 64)
		if err != nil {
			return fmt.Errorf("-chaos: bad probability %q for %s", val, key)
		}
		switch key {
		case "drop":
			cfg.ChaosDrop = p
		case "dup":
			cfg.ChaosDup = p
		case "reorder":
			cfg.ChaosReorder = p
		default:
			return fmt.Errorf("-chaos: unknown key %q (want drop, dup, reorder, seed)", key)
		}
	}
	return nil
}

// parseArg maps a REPL token onto a program value: integer, float, or
// (optionally quoted) string.
func parseArg(f string) autodist.Value {
	if n, err := strconv.ParseInt(f, 10, 64); err == nil {
		return n
	}
	if x, err := strconv.ParseFloat(f, 64); err == nil {
		return x
	}
	return strings.Trim(f, `"`)
}

// printSummary writes the cumulative traffic counters to stderr.
// served < 0 means a one-shot batch run.
func printSummary(k int, res *autodist.RunResult, adaptive, replicate, recovery, sim, compiled, elastic bool, served int64) {
	if served >= 0 {
		fmt.Fprintf(os.Stderr, "served %d invocations over %d nodes: %d messages, %d payload bytes (wall %v)\n",
			served, k, res.Messages, res.BytesSent, res.Wall)
	} else {
		fmt.Fprintf(os.Stderr, "distributed over %d nodes: %d messages, %d payload bytes (wall %v)\n",
			k, res.Messages, res.BytesSent, res.Wall)
	}
	fmt.Fprintf(os.Stderr, "optimisations: %d cache hits, %d async calls in %d batch frames\n",
		res.CacheHits, res.AsyncCalls, res.BatchFrames)
	if res.FusedBatches > 0 {
		fmt.Fprintf(os.Stderr, "fusion: %d fused accesses in %d DEPSEQ batches (%d round trips saved)\n",
			res.FusedAccesses, res.FusedBatches, res.FusedAccesses-res.FusedBatches)
	}
	if served > 0 {
		fmt.Fprintf(os.Stderr, "retention: %d hits served from state learned in earlier invocations\n",
			res.RetainedHits)
	}
	if adaptive {
		fmt.Fprintf(os.Stderr, "adaptive: %d live migrations, %d forwarded requests\n",
			res.Migrations, res.Forwards)
	}
	if replicate {
		fmt.Fprintf(os.Stderr, "replication: %d replica hits, %d fetches, %d invalidations\n",
			res.ReplicaHits, res.ReplicaFetches, res.Invalidations)
	}
	if recovery {
		fmt.Fprintf(os.Stderr, "fault tolerance: %d retransmits, %d recovered frames, %d promoted replicas, %d re-driven invocations\n",
			res.Retransmits, res.Recoveries, res.PromotedReplicas, res.RedrivenInvocations)
	}
	if compiled {
		fmt.Fprintf(os.Stderr, "tiered execution: %d compiled methods, %d tier-ups, %d compiled entries, %d deopts\n",
			res.CompiledMethods, res.TierUps, res.CompiledEntries, res.Deopts)
	}
	if elastic {
		fmt.Fprintf(os.Stderr, "membership: %d joins, %d drains, %d stale-view refusals\n",
			res.Joins, res.Drains, res.StaleViews)
	}
	if sim {
		fmt.Fprintf(os.Stderr, "simulated time: %.6fs\n", res.SimSeconds)
	}
}
