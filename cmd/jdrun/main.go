// Command jdrun executes an MJ program: sequentially on one VM, or
// automatically distributed across k nodes (in-process or local TCP).
//
// Usage:
//
//	jdrun prog.mj                      # sequential
//	jdrun -k 2 prog.mj                 # distributed, in-process fabric
//	jdrun -k 2 -tcp prog.mj            # distributed over local TCP
//	jdrun -k 2 -sim prog.mj            # report simulated times (1.7GHz + 800MHz nodes)
//	jdrun -k 2 -adaptive prog.mj       # adaptive repartitioning with live migration
//	jdrun -k 3 -replicate prog.mj      # read-replication with invalidate-on-write
//
// -adaptive=off and -replicate=off (the defaults) keep today's static
// behaviour exactly — the partition is a compile-time contract and
// every access pays its remote round-trip — which is what A/B runs
// compare against. -replicate composes with -adaptive. Incoherent flag
// combinations (e.g. -unoptimized with -replicate, or distribution
// flags without -k ≥ 2) fail fast with an error.
package main

import (
	"flag"
	"fmt"
	"os"

	"autodist"
	"autodist/internal/experiments"
)

func main() {
	k := flag.Int("k", 1, "number of nodes (1 = sequential)")
	seed := flag.Int64("seed", 1, "partitioner seed")
	eps := flag.Float64("eps", 0.6, "partitioner imbalance tolerance")
	tcp := flag.Bool("tcp", false, "use local TCP transport instead of in-process channels")
	unopt := flag.Bool("unoptimized", false, "disable message-exchange optimisations (caching/async/batching) for A/B runs")
	adaptive := flag.Bool("adaptive", false, "treat the partition as an initial placement: migrate objects to their observed communication affinity at run time")
	adaptEvery := flag.Int("adapt-every", 0, "adaptation epoch in synchronous requests (0 = default)")
	replicate := flag.Bool("replicate", false, "replicate read-mostly objects onto reader nodes (invalidate-on-write coherence)")
	sim := flag.Bool("sim", false, "enable the virtual clock (paper's heterogeneous testbed)")
	flag.Parse()
	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}
	// Fail fast on incoherent flag combinations instead of silently
	// ignoring half of them.
	usageErr := func(msg string) {
		fmt.Fprintln(os.Stderr, "jdrun:", msg)
		os.Exit(2)
	}
	if *adaptEvery > 0 && !*adaptive {
		usageErr("-adapt-every requires -adaptive")
	}
	if *replicate && *unopt {
		usageErr("-unoptimized disables the optimisations -replicate enables; pick one")
	}
	if *k <= 1 {
		switch {
		case *adaptive:
			usageErr("-adaptive requires a distributed run (-k ≥ 2)")
		case *replicate:
			usageErr("-replicate requires a distributed run (-k ≥ 2)")
		case *unopt:
			usageErr("-unoptimized requires a distributed run (-k ≥ 2)")
		case *tcp:
			usageErr("-tcp requires a distributed run (-k ≥ 2)")
		}
	}
	die := func(err error) {
		fmt.Fprintln(os.Stderr, "jdrun:", err)
		os.Exit(1)
	}

	var srcs []string
	for _, path := range flag.Args() {
		data, err := os.ReadFile(path)
		if err != nil {
			die(err)
		}
		srcs = append(srcs, string(data))
	}
	prog, err := autodist.CompileString(srcs...)
	if err != nil {
		die(err)
	}

	opts := autodist.RunOptions{Out: os.Stdout, TCP: *tcp, Unoptimized: *unopt, AdaptEvery: *adaptEvery, Replicate: *replicate}
	if *sim {
		speeds := make([]float64, *k)
		for i := range speeds {
			speeds[i] = experiments.ComputeNodeHz
		}
		speeds[0] = experiments.ServiceNodeHz
		opts.CPUSpeeds = speeds
		opts.Net = &autodist.NetModel{
			LatencySec:  experiments.EthernetLatencySec,
			BytesPerSec: experiments.EthernetBytesPerSec,
		}
	}

	if *k <= 1 {
		res, err := prog.Run(opts)
		if err != nil {
			die(err)
		}
		if *sim {
			fmt.Fprintf(os.Stderr, "simulated time: %.6fs (wall %v)\n", res.SimSeconds, res.Wall)
		}
		return
	}
	an, err := prog.Analyze()
	if err != nil {
		die(err)
	}
	plan, err := an.Partition(*k, autodist.PartitionOptions{Seed: *seed, Epsilon: *eps})
	if err != nil {
		die(err)
	}
	var dist *autodist.Distribution
	if *adaptive || *replicate {
		dist, err = plan.RewriteWith(autodist.RewriteOptions{Adaptive: *adaptive, Replicate: *replicate})
	} else {
		dist, err = plan.Rewrite()
	}
	if err != nil {
		die(err)
	}
	res, err := dist.Run(opts)
	if err != nil {
		die(err)
	}
	fmt.Fprintf(os.Stderr, "distributed over %d nodes: %d messages, %d payload bytes (wall %v)\n",
		*k, res.Messages, res.BytesSent, res.Wall)
	fmt.Fprintf(os.Stderr, "optimisations: %d cache hits, %d async calls in %d batch frames\n",
		res.CacheHits, res.AsyncCalls, res.BatchFrames)
	if *adaptive {
		fmt.Fprintf(os.Stderr, "adaptive: %d live migrations, %d forwarded requests\n",
			res.Migrations, res.Forwards)
	}
	if *replicate {
		fmt.Fprintf(os.Stderr, "replication: %d replica hits, %d fetches, %d invalidations\n",
			res.ReplicaHits, res.ReplicaFetches, res.Invalidations)
	}
	if *sim {
		fmt.Fprintf(os.Stderr, "simulated time: %.6fs\n", res.SimSeconds)
	}
}
