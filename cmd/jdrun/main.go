// Command jdrun executes an MJ program: sequentially on one VM, or
// automatically distributed across k nodes (in-process or local TCP).
//
// Usage:
//
//	jdrun prog.mj                      # sequential
//	jdrun -k 2 prog.mj                 # distributed, in-process fabric
//	jdrun -k 2 -tcp prog.mj            # distributed over local TCP
//	jdrun -k 2 -sim prog.mj            # report simulated times (1.7GHz + 800MHz nodes)
//	jdrun -k 2 -adaptive prog.mj       # adaptive repartitioning with live migration
//
// -adaptive=off (the default) keeps the partition a compile-time
// contract, exactly the static behaviour A/B runs compare against.
package main

import (
	"flag"
	"fmt"
	"os"

	"autodist"
	"autodist/internal/experiments"
)

func main() {
	k := flag.Int("k", 1, "number of nodes (1 = sequential)")
	seed := flag.Int64("seed", 1, "partitioner seed")
	eps := flag.Float64("eps", 0.6, "partitioner imbalance tolerance")
	tcp := flag.Bool("tcp", false, "use local TCP transport instead of in-process channels")
	unopt := flag.Bool("unoptimized", false, "disable message-exchange optimisations (caching/async/batching) for A/B runs")
	adaptive := flag.Bool("adaptive", false, "treat the partition as an initial placement: migrate objects to their observed communication affinity at run time")
	adaptEvery := flag.Int("adapt-every", 0, "adaptation epoch in synchronous requests (0 = default)")
	sim := flag.Bool("sim", false, "enable the virtual clock (paper's heterogeneous testbed)")
	flag.Parse()
	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}
	if *adaptEvery > 0 && !*adaptive {
		fmt.Fprintln(os.Stderr, "jdrun: -adapt-every requires -adaptive")
		os.Exit(2)
	}
	die := func(err error) {
		fmt.Fprintln(os.Stderr, "jdrun:", err)
		os.Exit(1)
	}

	var srcs []string
	for _, path := range flag.Args() {
		data, err := os.ReadFile(path)
		if err != nil {
			die(err)
		}
		srcs = append(srcs, string(data))
	}
	prog, err := autodist.CompileString(srcs...)
	if err != nil {
		die(err)
	}

	opts := autodist.RunOptions{Out: os.Stdout, TCP: *tcp, Unoptimized: *unopt, AdaptEvery: *adaptEvery}
	if *sim {
		speeds := make([]float64, *k)
		for i := range speeds {
			speeds[i] = experiments.ComputeNodeHz
		}
		speeds[0] = experiments.ServiceNodeHz
		opts.CPUSpeeds = speeds
		opts.Net = &autodist.NetModel{
			LatencySec:  experiments.EthernetLatencySec,
			BytesPerSec: experiments.EthernetBytesPerSec,
		}
	}

	if *k <= 1 {
		res, err := prog.Run(opts)
		if err != nil {
			die(err)
		}
		if *sim {
			fmt.Fprintf(os.Stderr, "simulated time: %.6fs (wall %v)\n", res.SimSeconds, res.Wall)
		}
		return
	}
	an, err := prog.Analyze()
	if err != nil {
		die(err)
	}
	plan, err := an.Partition(*k, autodist.PartitionOptions{Seed: *seed, Epsilon: *eps})
	if err != nil {
		die(err)
	}
	var dist *autodist.Distribution
	if *adaptive {
		dist, err = plan.RewriteAdaptive()
	} else {
		dist, err = plan.Rewrite()
	}
	if err != nil {
		die(err)
	}
	res, err := dist.Run(opts)
	if err != nil {
		die(err)
	}
	fmt.Fprintf(os.Stderr, "distributed over %d nodes: %d messages, %d payload bytes (wall %v)\n",
		*k, res.Messages, res.BytesSent, res.Wall)
	fmt.Fprintf(os.Stderr, "optimisations: %d cache hits, %d async calls in %d batch frames\n",
		res.CacheHits, res.AsyncCalls, res.BatchFrames)
	if *adaptive {
		fmt.Fprintf(os.Stderr, "adaptive: %d live migrations, %d forwarded requests\n",
			res.Migrations, res.Forwards)
	}
	if *sim {
		fmt.Fprintf(os.Stderr, "simulated time: %.6fs\n", res.SimSeconds)
	}
}
