package main

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"

	"autodist"
	"autodist/internal/benchfmt"
)

// listenLoop deploys the distribution resident and serves invocations
// over TCP: each accepted connection carries newline-delimited
// invocation lines (the -serve syntax) and gets one reply line per
// request, in order per connection. Connections run concurrently; the
// cluster's MaxConcurrent admission governs how many invocations
// execute at once. "!stats" returns a benchfmt.StatsSnapshot as JSON;
// "!shutdown" drains the cluster and returns. The bound address is
// announced on stderr so callers may listen on port 0.
func listenLoop(dist *autodist.Distribution, cfg autodist.Config, addr string) error {
	cluster, err := dist.Deploy(cfg)
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		_ = cluster.Shutdown(context.Background())
		return err
	}
	fmt.Fprintf(os.Stderr, "listening on %s; %d nodes; entrypoints: %s\n",
		ln.Addr(), cfg.K, strings.Join(cluster.Entrypoints(), " "))

	stop := make(chan struct{})
	var stopOnce sync.Once
	shutdown := func() { stopOnce.Do(func() { close(stop) }) }

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			c, err := ln.Accept()
			if err != nil {
				return // listener closed by shutdown
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				serveConn(c, cluster, shutdown)
			}()
		}
	}()

	<-stop
	_ = ln.Close()
	wg.Wait()
	served := cluster.Invocations()
	if err := cluster.Shutdown(context.Background()); err != nil {
		return err
	}
	printSummary(cfg.K, cluster.Stats(), cfg.Adaptive, cfg.Replicate, cfg.FailureRecovery, len(cfg.CPUSpeeds) > 0, cfg.Compile, cfg.Elastic, served)
	return nil
}

// serveConn handles one client connection until EOF: invocation lines
// are answered in order ("entry = value", "entry ok", "err: ...");
// "!stats" answers with a JSON counter snapshot and "!shutdown" asks
// the server to drain and exit (acknowledged with "!bye"). On an
// -elastic deployment "!join" grows the cluster by one node
// ("!joined rank=N ms=X") and "!drain N" retires rank N gracefully
// ("!drained rank=N ms=X") — both while invocations keep flowing.
func serveConn(c net.Conn, cluster *autodist.Cluster, shutdown func()) {
	defer c.Close()
	w := bufio.NewWriter(c)
	sc := bufio.NewScanner(c)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		switch {
		case line == "!stats":
			res := cluster.Stats()
			snap := benchfmt.StatsSnapshot{
				Invocations:     cluster.Invocations(),
				Messages:        res.Messages,
				Bytes:           res.BytesSent,
				Retransmits:     res.Retransmits,
				Recoveries:      res.Recoveries,
				FusedBatches:    res.FusedBatches,
				FusedAccesses:   res.FusedAccesses,
				CompiledMethods: res.CompiledMethods,
				TierUps:         res.TierUps,
				CompiledEntries: res.CompiledEntries,
				Deopts:          res.Deopts,
				Joins:           res.Joins,
				Drains:          res.Drains,
				Migrations:      res.Migrations,
			}
			data, _ := json.Marshal(snap)
			fmt.Fprintf(w, "!stats %s\n", data)
		case line == "!join":
			t0 := time.Now()
			rank, err := cluster.Join()
			if err != nil {
				fmt.Fprintf(w, "err: %v\n", err)
			} else {
				ms := float64(time.Since(t0)) / float64(time.Millisecond)
				fmt.Fprintf(w, "!joined rank=%d ms=%.3f\n", rank, ms)
				fmt.Fprintf(os.Stderr, "joined rank %d in %.3fms\n", rank, ms)
			}
		case strings.HasPrefix(line, "!drain "):
			rank, err := strconv.Atoi(strings.TrimSpace(strings.TrimPrefix(line, "!drain ")))
			if err != nil {
				fmt.Fprintf(w, "err: !drain wants a rank: %v\n", err)
				break
			}
			t0 := time.Now()
			if err := cluster.Drain(rank); err != nil {
				fmt.Fprintf(w, "err: %v\n", err)
			} else {
				ms := float64(time.Since(t0)) / float64(time.Millisecond)
				fmt.Fprintf(w, "!drained rank=%d ms=%.3f\n", rank, ms)
				fmt.Fprintf(os.Stderr, "drained rank %d in %.3fms\n", rank, ms)
			}
		case line == "!shutdown":
			fmt.Fprintln(w, "!bye")
			_ = w.Flush()
			shutdown()
			return
		default:
			fields := strings.Fields(line)
			args := make([]autodist.Value, 0, len(fields)-1)
			for _, f := range fields[1:] {
				args = append(args, parseArg(f))
			}
			res, err := cluster.Invoke(fields[0], args...)
			switch {
			case err != nil:
				fmt.Fprintf(w, "err: %v\n", err)
			case res.Value != nil:
				fmt.Fprintf(w, "%s = %v\n", res.Entry, res.Value)
			default:
				fmt.Fprintf(w, "%s ok\n", res.Entry)
			}
		}
		if err := w.Flush(); err != nil {
			return
		}
	}
}
