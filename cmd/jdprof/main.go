// Command jdprof profiles an MJ program with one of the six metrics of
// paper §6 and prints the metric's report.
//
// Usage:
//
//	jdprof -metric hot-methods prog.mj
//	jdprof -metric all prog.mj       # run every metric in turn
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"autodist/internal/compile"
	"autodist/internal/profiler"
	"autodist/internal/vm"
)

var metricNames = map[string]profiler.Metric{
	"duration":    profiler.MethodDuration,
	"frequency":   profiler.MethodFrequency,
	"hot-methods": profiler.HotMethods,
	"hot-paths":   profiler.HotPaths,
	"memory":      profiler.MemoryAllocation,
	"callgraph":   profiler.DynamicCallGraph,
}

func main() {
	metric := flag.String("metric", "hot-methods", "duration|frequency|hot-methods|hot-paths|memory|callgraph|all")
	showOutput := flag.Bool("show-output", false, "also print the program's own output")
	flag.Parse()
	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}
	die := func(err error) {
		fmt.Fprintln(os.Stderr, "jdprof:", err)
		os.Exit(1)
	}
	var srcs []string
	for _, path := range flag.Args() {
		data, err := os.ReadFile(path)
		if err != nil {
			die(err)
		}
		srcs = append(srcs, string(data))
	}
	bp, _, err := compile.CompileSource(srcs...)
	if err != nil {
		die(err)
	}

	run := func(m profiler.Metric) {
		machine, err := vm.New(bp.Clone())
		if err != nil {
			die(err)
		}
		if *showOutput {
			machine.Out = os.Stdout
		} else {
			machine.Out = io.Discard
		}
		p := profiler.Attach(machine, m)
		start := time.Now()
		if err := machine.RunMain(); err != nil {
			die(err)
		}
		fmt.Printf("%s(%v elapsed)\n", p.Report(), time.Since(start).Round(time.Microsecond))
	}

	if *metric == "all" {
		for _, m := range profiler.Metrics() {
			run(m)
		}
		return
	}
	m, ok := metricNames[*metric]
	if !ok {
		die(fmt.Errorf("unknown metric %q", *metric))
	}
	run(m)
}
