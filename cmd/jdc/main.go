// Command jdc is the MJ compiler: it parses, type-checks and compiles
// MJ source files into binary class files (the bytecode the
// distribution infrastructure operates on).
//
// Usage:
//
//	jdc -o build prog.mj [more.mj ...]   # writes build/<Class>.class
//	jdc -dis prog.mj                     # print disassembly instead
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"autodist/internal/bytecode"
	"autodist/internal/compile"
)

func main() {
	outDir := flag.String("o", ".", "output directory for .class files")
	dis := flag.Bool("dis", false, "print disassembly instead of writing class files")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: jdc [-o dir] [-dis] file.mj ...")
		os.Exit(2)
	}
	var srcs []string
	for _, path := range flag.Args() {
		data, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "jdc:", err)
			os.Exit(1)
		}
		srcs = append(srcs, string(data))
	}
	prog, _, err := compile.CompileSource(srcs...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "jdc:", err)
		os.Exit(1)
	}
	if *dis {
		for _, cf := range prog.Classes() {
			fmt.Println(bytecode.DisasmClass(cf))
		}
		return
	}
	for _, cf := range prog.Classes() {
		data, err := cf.Encode()
		if err != nil {
			fmt.Fprintln(os.Stderr, "jdc:", err)
			os.Exit(1)
		}
		path := filepath.Join(*outDir, cf.Name+".class")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "jdc:", err)
			os.Exit(1)
		}
	}
	if prog.MainClass != "" {
		fmt.Printf("compiled %d classes (main: %s)\n", prog.NumClasses(), prog.MainClass)
	} else {
		fmt.Printf("compiled %d classes (no main)\n", prog.NumClasses())
	}
}
