// Command jdist runs the distribution pipeline over an MJ program:
// dependence analysis, graph partitioning and communication generation,
// with optional VCG dumps of the class relation and object dependence
// graphs and listings of the quad IR and generated native code.
//
// Usage:
//
//	jdist -k 2 prog.mj                      # analyze + partition + rewrite, print summary
//	jdist -k 2 -crg crg.vcg -odg odg.vcg prog.mj
//	jdist -quads Bank.main prog.mj          # Figure 5-style quad listing
//	jdist -tier Bank.main prog.mj           # quads + compiled-op listing + deopt points
//	jdist -asm Bank.main -target x86 prog.mj
//	jdist -k 2 -dump-node 0 prog.mj         # disassemble node 0's rewritten code
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"autodist/internal/analysis"
	"autodist/internal/bytecode"
	"autodist/internal/codegen"
	"autodist/internal/compile"
	"autodist/internal/jit"
	"autodist/internal/partition"
	"autodist/internal/quad"
	"autodist/internal/rewrite"
	"autodist/internal/vm"
)

func main() {
	k := flag.Int("k", 2, "number of partitions (virtual processors)")
	seed := flag.Int64("seed", 1, "partitioner seed")
	eps := flag.Float64("eps", 0.6, "partitioner imbalance tolerance")
	method := flag.String("method", "multilevel", "partitioning method: multilevel|flat-kl|round-robin|random")
	crgOut := flag.String("crg", "", "write class relation graph VCG to file")
	odgOut := flag.String("odg", "", "write object dependence graph VCG to file")
	quads := flag.String("quads", "", "print quad IR for Class.method")
	tier := flag.String("tier", "", "print the tiered-execution view of Class.method: quads, the compiled-op listing and its deopt points")
	asm := flag.String("asm", "", "print generated assembly for Class.method")
	target := flag.String("target", "x86", "code generation target: x86|strongarm")
	dumpNode := flag.Int("dump-node", -1, "disassemble the rewritten program for this node")
	flag.Parse()
	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}
	die := func(err error) {
		fmt.Fprintln(os.Stderr, "jdist:", err)
		os.Exit(1)
	}

	var srcs []string
	for _, path := range flag.Args() {
		data, err := os.ReadFile(path)
		if err != nil {
			die(err)
		}
		srcs = append(srcs, string(data))
	}
	prog, _, err := compile.CompileSource(srcs...)
	if err != nil {
		die(err)
	}

	if *quads != "" || *asm != "" || *tier != "" {
		spec := *quads
		if spec == "" {
			spec = *asm
		}
		if spec == "" {
			spec = *tier
		}
		cls, meth, ok := strings.Cut(spec, ".")
		if !ok {
			die(fmt.Errorf("want Class.method, got %q", spec))
		}
		cf := prog.Class(cls)
		if cf == nil {
			die(fmt.Errorf("class %s not found", cls))
		}
		m := cf.MethodByName(meth)
		if m == nil {
			die(fmt.Errorf("method %s.%s not found", cls, meth))
		}
		f, err := quad.Translate(cf, m)
		if err != nil {
			die(err)
		}
		if *quads != "" {
			fmt.Print(f.Format())
			return
		}
		if *tier != "" {
			// The tier view pairs the quad IR with what the compiled
			// tier makes of it: one Go closure per quad, and a deopt
			// annotation wherever execution must fall back to the
			// interpreter (access-mediated sites resolve to native
			// methods, so every one of them is a deopt point).
			machine, err := vm.New(prog.Clone())
			if err != nil {
				die(err)
			}
			vc := machine.Class(cls)
			if vc == nil {
				die(fmt.Errorf("class %s not loaded", cls))
			}
			fmt.Print(f.Format())
			fmt.Println()
			cm, err := jit.Compile(machine, vc, vc.File.MethodByName(meth))
			if err != nil {
				fmt.Printf("not compilable: %v\n", err)
				return
			}
			fmt.Print(cm.Listing())
			return
		}
		out, err := codegen.Generate(f, *target)
		if err != nil {
			die(err)
		}
		fmt.Print(out)
		return
	}

	res, err := analysis.Analyze(prog)
	if err != nil {
		die(err)
	}
	var pm partition.Method
	switch *method {
	case "multilevel":
		pm = partition.Multilevel
	case "flat-kl":
		pm = partition.FlatKL
	case "round-robin":
		pm = partition.RoundRobin
	case "random":
		pm = partition.Random
	default:
		die(fmt.Errorf("unknown method %q", *method))
	}
	pres, err := partition.Partition(res.ODG.Graph, partition.Options{
		K: *k, Seed: *seed, Epsilon: *eps, Method: pm,
	})
	if err != nil {
		die(err)
	}
	rw, err := rewrite.Rewrite(prog, res, *k)
	if err != nil {
		die(err)
	}

	fmt.Printf("classes: %d   methods: %d   alloc sites: %d\n",
		prog.NumClasses(), prog.NumMethods(), len(res.ODG.Sites))
	fmt.Printf("CRG: %d nodes, %d edges\n", res.CRG.Graph.NumVertices(), res.CRG.Graph.NumEdges())
	fmt.Printf("ODG: %d nodes, %d edges\n", res.ODG.Graph.NumVertices(), res.ODG.Graph.NumEdges())
	fmt.Printf("partition (%s, k=%d): edgecut=%d cut-edges=%d imbalance=%.2f\n",
		pm, *k, pres.EdgeCut, pres.CutEdges, pres.Imbalance)
	for node := 0; node < *k; node++ {
		fmt.Printf("node %d: dependent classes: %v\n", node, rw.Plan.DependentClasses(node))
	}

	if *crgOut != "" {
		f, err := os.Create(*crgOut)
		if err != nil {
			die(err)
		}
		if err := res.CRG.Graph.VCG(f); err != nil {
			die(err)
		}
		_ = f.Close()
		fmt.Println("wrote", *crgOut)
	}
	if *odgOut != "" {
		f, err := os.Create(*odgOut)
		if err != nil {
			die(err)
		}
		if err := res.ODG.Graph.VCG(f); err != nil {
			die(err)
		}
		_ = f.Close()
		fmt.Println("wrote", *odgOut)
	}
	if *dumpNode >= 0 && *dumpNode < *k {
		for _, cf := range rw.Nodes[*dumpNode].Classes() {
			fmt.Println(bytecode.DisasmClass(cf))
		}
	}
}
