// Command loadgen drives a jdrun -listen invocation server over real
// TCP and measures wall-clock transport performance, emitting (or
// merging into) a BENCH_transport.json report so the perf trajectory
// is tracked across changes.
//
// Usage:
//
//	jdrun -k 2 -tcp -listen 127.0.0.1:7070 -concurrency 8 examples/service/service.mj &
//	loadgen -addr 127.0.0.1:7070 -conns 8 -init main -line "sum" \
//	        -label coalesce -k 2 -concurrency 8 -out BENCH_transport.json
//
//	loadgen -validate BENCH_transport.json   # CI schema check
//
// The harness opens -conns client connections, provisions once with
// -init, warms up, snapshots the server's "!stats" counters, hammers
// -line for -duration, snapshots again, and computes invokes/sec,
// p50/p99 latency, and frames/bytes per invoke from the deltas. An
// in-process probe (-allocs, on by default) also measures allocations
// per transport Send over a live TCP pair with testing.AllocsPerRun —
// the zero-allocation send-path guard, recorded as allocs_per_send.
//
// When -out names an existing valid report, the new run is merged into
// it (replacing any run with the same -label), so legacy/fast A/B
// pairs accumulate in one committed file.
//
// -scaleout runs the membership scenario against a jdrun -elastic
// -listen server instead: steady load for -duration, a "!join"
// admitting a fresh node under that load, the same load again, and a
// BENCH_membership.json report recording the join latency and the
// throughput ramp (validated with -validate like the others).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"os"
	"runtime"
	"runtime/debug"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"autodist/internal/bench"
	"autodist/internal/benchfmt"
	"autodist/internal/compile"
	"autodist/internal/jit"
	"autodist/internal/transport"
	"autodist/internal/vm"
	"autodist/internal/wire"
)

func main() {
	addr := flag.String("addr", "", "jdrun -listen server address")
	conns := flag.Int("conns", 8, "client TCP connections (one in-flight invocation each)")
	initLine := flag.String("init", "main", "provisioning invocation sent once before the run (empty to skip)")
	line := flag.String("line", "sum", "invocation line each connection repeats")
	warmup := flag.Duration("warmup", 1*time.Second, "warmup before measurement")
	duration := flag.Duration("duration", 5*time.Second, "measurement window")
	label := flag.String("label", "coalesce", "run label recorded in the report")
	k := flag.Int("k", 2, "server node count (metadata)")
	concurrency := flag.Int("concurrency", 8, "server MaxConcurrent (metadata)")
	coalesce := flag.Bool("coalesce", true, "server write-combiner mode (metadata)")
	compress := flag.Bool("compress", false, "server compression mode (metadata)")
	workload := flag.String("workload", "examples/service/service.mj", "workload description recorded in the report")
	out := flag.String("out", "", "write (or merge into) this BENCH_transport.json")
	allocs := flag.Bool("allocs", true, "measure allocations per transport Send in-process")
	expectFaults := flag.Bool("expect-faults", false, "fail unless the server reports nonzero retransmits and recoveries (chaos smoke runs)")
	compileTier := flag.Bool("compile", false, "server tiered-execution mode (metadata): record compile counters from !stats deltas")
	kernels := flag.String("kernels", "", "in-process interpreted-vs-compiled A/B over these bench kernels (comma-separated, or \"all\"); writes a BENCH_compile.json report to -out")
	kernelIters := flag.Int("kernel-iters", 3, "main() invocations per side in -kernels mode")
	kernelThreshold := flag.Int("kernel-threshold", 1, "hotness threshold for the compiled side in -kernels mode")
	validate := flag.String("validate", "", "validate an existing report (transport, compile or membership, sniffed) and exit")
	scaleout := flag.Bool("scaleout", false, "membership scenario: measure throughput, admit a node with !join mid-stream, measure again; writes a BENCH_membership.json report to -out")
	flag.Parse()

	die := func(err error) {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
	if *validate != "" {
		if err := validateReport(*validate); err != nil {
			die(err)
		}
		return
	}
	if *kernels != "" {
		if err := runKernels(*kernels, *kernelIters, *kernelThreshold, *out); err != nil {
			die(err)
		}
		return
	}
	if *addr == "" {
		die(fmt.Errorf("-addr is required (or -validate / -kernels)"))
	}
	if *scaleout {
		if err := runScaleout(*addr, *conns, *initLine, *line, *warmup, *duration, *k, *workload, *out); err != nil {
			die(err)
		}
		return
	}

	run, err := drive(*addr, *conns, *initLine, *line, *warmup, *duration)
	if err != nil {
		die(err)
	}
	run.Label = *label
	run.Concurrency = *concurrency
	run.K = *k
	run.Coalesce = *coalesce
	run.Compress = *compress
	run.Compile = *compileTier

	var allocsPerSend float64
	if *allocs {
		allocsPerSend = measureSendAllocs()
	}

	fmt.Printf("%s: %d invocations in %.2fs = %.0f invokes/sec, p50 %.3fms p99 %.3fms, %.1f frames / %.0f bytes per invoke",
		run.Label, run.Invocations, run.DurationSec, run.InvokesPerSec,
		run.P50Ms, run.P99Ms, run.FramesPerInvoke, run.BytesPerInvoke)
	if *allocs {
		fmt.Printf(", %.0f allocs/send", allocsPerSend)
	}
	if run.Retransmits != 0 || run.Recoveries != 0 {
		fmt.Printf(", %d retransmits / %d recoveries", run.Retransmits, run.Recoveries)
	}
	fmt.Println()
	if *expectFaults && (run.Retransmits == 0 || run.Recoveries == 0) {
		die(fmt.Errorf("expected fault healing but measured %d retransmits / %d recoveries (is the server running -recover with -chaos?)",
			run.Retransmits, run.Recoveries))
	}

	if *out == "" {
		return
	}
	report := &benchfmt.TransportReport{
		Benchmark: "transport_loadgen",
		Date:      time.Now().Format("2006-01-02"),
		Host:      fmt.Sprintf("%s/%s, %d cpus", runtime.GOOS, runtime.GOARCH, runtime.NumCPU()),
		Workload:  fmt.Sprintf("%s · %q", *workload, *line),
	}
	if prev, err := benchfmt.ReadTransportReport(*out); err == nil {
		report = prev
		report.Date = time.Now().Format("2006-01-02")
	}
	if *allocs {
		report.AllocsPerSend = allocsPerSend
	}
	kept := report.Runs[:0]
	for _, r := range report.Runs {
		if r.Label != run.Label {
			kept = append(kept, r)
		}
	}
	report.Runs = append(kept, *run)
	if err := benchfmt.WriteTransportReport(*out, report); err != nil {
		die(err)
	}
}

// drive runs the measurement protocol against the server and returns a
// partially filled run (topology metadata is the caller's).
func drive(addr string, conns int, initLine, line string, warmup, duration time.Duration) (*benchfmt.TransportRun, error) {
	// Control connection: provisioning and !stats snapshots.
	ctl, err := dial(addr)
	if err != nil {
		return nil, err
	}
	defer ctl.close()
	if initLine != "" {
		if reply, err := ctl.roundTrip(initLine); err != nil {
			return nil, err
		} else if strings.HasPrefix(reply, "err:") {
			return nil, fmt.Errorf("provisioning %q failed: %s", initLine, reply)
		}
	}

	clients := make([]*client, conns)
	for i := range clients {
		if clients[i], err = dial(addr); err != nil {
			return nil, err
		}
		defer clients[i].close()
	}

	// measuring gates latency recording; stop ends the workers.
	var measuring, stop atomic.Bool
	lats := make([][]time.Duration, conns)
	counts := make([]int64, conns)
	errs := make([]error, conns)
	var wg sync.WaitGroup
	for i, c := range clients {
		wg.Add(1)
		go func(i int, c *client) {
			defer wg.Done()
			for !stop.Load() {
				t0 := time.Now()
				reply, err := c.roundTrip(line)
				if err != nil {
					errs[i] = err
					return
				}
				if strings.HasPrefix(reply, "err:") {
					errs[i] = fmt.Errorf("invocation %q failed: %s", line, reply)
					return
				}
				if measuring.Load() {
					lats[i] = append(lats[i], time.Since(t0))
					counts[i]++
				}
			}
		}(i, c)
	}

	time.Sleep(warmup)
	before, err := ctl.stats()
	if err != nil {
		stop.Store(true)
		wg.Wait()
		return nil, err
	}
	start := time.Now()
	measuring.Store(true)
	time.Sleep(duration)
	measuring.Store(false)
	elapsed := time.Since(start)
	after, err := ctl.stats()
	stop.Store(true)
	wg.Wait()
	if err != nil {
		return nil, err
	}
	for _, e := range errs {
		if e != nil {
			return nil, e
		}
	}

	var all []time.Duration
	var total int64
	for i := range lats {
		all = append(all, lats[i]...)
		total += counts[i]
	}
	if total == 0 {
		return nil, fmt.Errorf("no invocations completed in the measurement window")
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	pct := func(p float64) float64 {
		idx := int(p * float64(len(all)-1))
		return float64(all[idx]) / float64(time.Millisecond)
	}
	run := &benchfmt.TransportRun{
		Conns:         conns,
		DurationSec:   elapsed.Seconds(),
		WarmupSec:     warmup.Seconds(),
		Invocations:   total,
		InvokesPerSec: float64(total) / elapsed.Seconds(),
		P50Ms:         pct(0.50),
		P99Ms:         pct(0.99),
	}
	// Per-invoke traffic from the server's own counters: the snapshot
	// delta attributes internode frames and payload bytes to the
	// window's invocations (including warmup stragglers, which wash
	// out over any reasonable window).
	if di := after.Invocations - before.Invocations; di > 0 {
		run.FramesPerInvoke = float64(after.Messages-before.Messages) / float64(di)
		run.BytesPerInvoke = float64(after.Bytes-before.Bytes) / float64(di)
	}
	// Healing counters: nonzero only against a -recover server, and
	// only when chaos (or a real fault) actually made the reliability
	// layer work.
	run.Retransmits = after.Retransmits - before.Retransmits
	run.Recoveries = after.Recoveries - before.Recoveries
	// Access-fusion counters: zero against a -nofuse server, so the
	// fused/nofuse A/B entries are self-describing.
	run.FusedBatches = after.FusedBatches - before.FusedBatches
	run.FusedAccesses = after.FusedAccesses - before.FusedAccesses
	// Tiered-execution counters: nonzero only against a -compile
	// server (compilations and promotions may all land in warmup;
	// compiled-frame entries keep accumulating through the window).
	run.CompiledMethods = after.CompiledMethods - before.CompiledMethods
	run.TierUps = after.TierUps - before.TierUps
	run.CompiledEntries = after.CompiledEntries - before.CompiledEntries
	run.Deopts = after.Deopts - before.Deopts
	return run, nil
}

// runScaleout measures the membership scenario against a jdrun
// -elastic -listen server: steady client load for one window, a
// "!join" admitting a fresh node mid-stream, the same load for a
// second window. The server must keep answering through the
// transition — any invocation error fails the run — and the report
// records the join latency, the per-phase throughput ramp, and the
// server's membership counters.
func runScaleout(addr string, conns int, initLine, line string, warmup, duration time.Duration, k int, workload, out string) error {
	ctl, err := dial(addr)
	if err != nil {
		return err
	}
	defer ctl.close()
	if initLine != "" {
		if reply, err := ctl.roundTrip(initLine); err != nil {
			return err
		} else if strings.HasPrefix(reply, "err:") {
			return fmt.Errorf("provisioning %q failed: %s", initLine, reply)
		}
	}

	clients := make([]*client, conns)
	for i := range clients {
		if clients[i], err = dial(addr); err != nil {
			return err
		}
		defer clients[i].close()
	}

	// phase < 0 means warmup (not recorded); workers tag each latency
	// with the phase it completed in.
	var phase atomic.Int32
	phase.Store(-1)
	var stop atomic.Bool
	type tagged struct {
		phase int32
		lat   time.Duration
	}
	lats := make([][]tagged, conns)
	errs := make([]error, conns)
	var wg sync.WaitGroup
	for i, c := range clients {
		wg.Add(1)
		go func(i int, c *client) {
			defer wg.Done()
			for !stop.Load() {
				t0 := time.Now()
				reply, err := c.roundTrip(line)
				if err != nil {
					errs[i] = err
					return
				}
				if strings.HasPrefix(reply, "err:") {
					errs[i] = fmt.Errorf("invocation %q failed: %s", line, reply)
					return
				}
				if p := phase.Load(); p >= 0 {
					lats[i] = append(lats[i], tagged{phase: p, lat: time.Since(t0)})
				}
			}
		}(i, c)
	}
	fail := func(err error) error {
		stop.Store(true)
		wg.Wait()
		return err
	}

	time.Sleep(warmup)
	windows := make([]time.Duration, 2)
	phase.Store(0)
	t0 := time.Now()
	time.Sleep(duration)

	// The join happens between the windows, under full client load.
	joinReply, err := ctl.roundTrip("!join")
	if err != nil {
		return fail(err)
	}
	joinedRank, joinMs, err := parseJoined(joinReply)
	if err != nil {
		return fail(err)
	}
	windows[0] = time.Since(t0)
	phase.Store(1)
	t0 = time.Now()
	time.Sleep(duration)
	windows[1] = time.Since(t0)
	after, err := ctl.stats()
	stop.Store(true)
	wg.Wait()
	if err != nil {
		return err
	}
	for _, e := range errs {
		if e != nil {
			return e
		}
	}

	labels := []string{"before-join", "after-join"}
	report := &benchfmt.MembershipReport{
		Benchmark:  "membership_scaleout",
		Date:       time.Now().Format("2006-01-02"),
		Host:       fmt.Sprintf("%s/%s, %d cpus", runtime.GOOS, runtime.GOARCH, runtime.NumCPU()),
		Workload:   fmt.Sprintf("%s · %q", workload, line),
		Conns:      conns,
		K:          k,
		JoinedRank: joinedRank,
		JoinMs:     joinMs,
		Joins:      after.Joins,
		Drains:     after.Drains,
		Migrations: after.Migrations,
	}
	for p := range labels {
		var all []time.Duration
		for i := range lats {
			for _, t := range lats[i] {
				if int(t.phase) == p {
					all = append(all, t.lat)
				}
			}
		}
		if len(all) == 0 {
			return fmt.Errorf("phase %q completed no invocations", labels[p])
		}
		sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
		pct := func(q float64) float64 {
			return float64(all[int(q*float64(len(all)-1))]) / float64(time.Millisecond)
		}
		secs := windows[p].Seconds()
		report.Phases = append(report.Phases, benchfmt.MembershipPhase{
			Label:         labels[p],
			DurationSec:   secs,
			Invocations:   int64(len(all)),
			InvokesPerSec: float64(len(all)) / secs,
			P50Ms:         pct(0.50),
			P99Ms:         pct(0.99),
		})
	}

	for _, p := range report.Phases {
		fmt.Printf("%s: %d invocations in %.2fs = %.0f invokes/sec, p50 %.3fms p99 %.3fms\n",
			p.Label, p.Invocations, p.DurationSec, p.InvokesPerSec, p.P50Ms, p.P99Ms)
	}
	fmt.Printf("join: rank %d admitted in %.3fms; %d joins, %d migrations\n",
		report.JoinedRank, report.JoinMs, report.Joins, report.Migrations)
	if out == "" {
		return nil
	}
	return benchfmt.WriteMembershipReport(out, report)
}

// parseJoined extracts rank and latency from a "!joined rank=N ms=X"
// reply.
func parseJoined(reply string) (int, float64, error) {
	var rank int
	var ms float64
	if _, err := fmt.Sscanf(reply, "!joined rank=%d ms=%f", &rank, &ms); err != nil {
		return 0, 0, fmt.Errorf("unexpected !join reply %q: %w", reply, err)
	}
	return rank, ms, nil
}

// validateReport validates a committed benchmark report, sniffing its
// type from the "benchmark" field.
func validateReport(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var head struct {
		Benchmark string `json:"benchmark"`
	}
	if err := json.Unmarshal(data, &head); err != nil {
		return fmt.Errorf("loadgen: %s: %w", path, err)
	}
	switch head.Benchmark {
	case "compile_kernels":
		r, err := benchfmt.ReadCompileReport(path)
		if err != nil {
			return err
		}
		fmt.Printf("%s: valid (%d kernels, threshold %d)\n", path, len(r.Runs), r.Threshold)
	case "membership_scaleout":
		r, err := benchfmt.ReadMembershipReport(path)
		if err != nil {
			return err
		}
		fmt.Printf("%s: valid (%d phases, join %.1fms)\n", path, len(r.Phases), r.JoinMs)
	default:
		r, err := benchfmt.ReadTransportReport(path)
		if err != nil {
			return err
		}
		fmt.Printf("%s: valid (%d runs, %.0f allocs/send)\n", path, len(r.Runs), r.AllocsPerSend)
	}
	return nil
}

// runKernels measures the tiered-execution speedup in-process: each
// kernel's main() runs -kernel-iters times on a pure interpreter and
// again on a JIT-enabled VM (threshold -kernel-threshold), outputs are
// required to be byte-identical (and to match the kernel's registered
// expectation), and the per-iteration wall-time ratio is recorded. The
// report merges into -out like the transport report does, replacing
// same-kernel rows.
func runKernels(spec string, iters, threshold int, out string) error {
	names := bench.CompileKernelNames()
	if spec != "all" {
		names = strings.Split(spec, ",")
	}
	if iters < 1 {
		iters = 1
	}
	report := &benchfmt.CompileReport{
		Benchmark: "compile_kernels",
		Date:      time.Now().Format("2006-01-02"),
		Host:      fmt.Sprintf("%s/%s, %d cpus", runtime.GOOS, runtime.GOARCH, runtime.NumCPU()),
		Threshold: threshold,
	}
	if out != "" {
		if prev, err := benchfmt.ReadCompileReport(out); err == nil {
			report = prev
			report.Date = time.Now().Format("2006-01-02")
			report.Threshold = threshold
		}
	}
	for _, name := range names {
		run, err := measureKernel(strings.TrimSpace(name), iters, threshold)
		if err != nil {
			return err
		}
		fmt.Printf("%s: interp %.2fms/op, compiled %.2fms/op, speedup %.1fx (%d compiled, %d tier-ups, %d compiled entries, %d deopts)\n",
			run.Kernel, run.InterpNsPerOp/1e6, run.CompiledNsPerOp/1e6, run.Speedup,
			run.CompiledMethods, run.TierUps, run.CompiledEntries, run.Deopts)
		kept := report.Runs[:0]
		for _, r := range report.Runs {
			if r.Kernel != run.Kernel {
				kept = append(kept, r)
			}
		}
		report.Runs = append(kept, *run)
	}
	if out == "" {
		return nil
	}
	return benchfmt.WriteCompileReport(out, report)
}

// measureKernel runs one kernel on both tiers and returns its row.
func measureKernel(name string, iters, threshold int) (*benchfmt.CompileRun, error) {
	prog, err := bench.Get(name)
	if err != nil {
		return nil, err
	}
	build := func() (*vm.VM, *strings.Builder, error) {
		bp, _, err := compile.CompileSource(prog.Source)
		if err != nil {
			return nil, nil, fmt.Errorf("%s: %w", name, err)
		}
		m, err := vm.New(bp)
		if err != nil {
			return nil, nil, err
		}
		sb := &strings.Builder{}
		m.Out = sb
		m.MaxSteps = 10_000_000_000
		return m, sb, nil
	}
	timeSide := func(enable bool) (float64, *vm.VM, string, error) {
		m, sb, err := build()
		if err != nil {
			return 0, nil, "", err
		}
		if enable {
			m.EnableJIT(threshold, jit.Backend(m))
		}
		t0 := time.Now()
		for i := 0; i < iters; i++ {
			if err := m.RunMain(); err != nil {
				return 0, nil, "", fmt.Errorf("%s: %w", name, err)
			}
		}
		return float64(time.Since(t0).Nanoseconds()) / float64(iters), m, sb.String(), nil
	}
	interpNs, _, interpOut, err := timeSide(false)
	if err != nil {
		return nil, err
	}
	compiledNs, mj, compiledOut, err := timeSide(true)
	if err != nil {
		return nil, err
	}
	if interpOut != compiledOut {
		return nil, fmt.Errorf("%s: tiered output diverged:\ninterp:\n%s\ncompiled:\n%s", name, interpOut, compiledOut)
	}
	if prog.ExpectOutput != "" && compiledOut != strings.Repeat(prog.ExpectOutput, iters) {
		return nil, fmt.Errorf("%s: unexpected output %q", name, compiledOut)
	}
	cm, tu, en, d := mj.JITStats()
	return &benchfmt.CompileRun{
		Kernel:          name,
		Iters:           iters,
		InterpNsPerOp:   interpNs,
		CompiledNsPerOp: compiledNs,
		Speedup:         interpNs / compiledNs,
		CompiledMethods: int64(cm),
		TierUps:         int64(tu),
		CompiledEntries: int64(en),
		Deopts:          int64(d),
	}, nil
}

// client is one line-protocol connection to the server.
type client struct {
	c net.Conn
	r *bufio.Reader
}

func dial(addr string) (*client, error) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &client{c: c, r: bufio.NewReader(c)}, nil
}

func (c *client) close() { _ = c.c.Close() }

// roundTrip sends one line and returns the reply line.
func (c *client) roundTrip(line string) (string, error) {
	if _, err := fmt.Fprintln(c.c, line); err != nil {
		return "", err
	}
	reply, err := c.r.ReadString('\n')
	if err != nil {
		return "", err
	}
	return strings.TrimSpace(reply), nil
}

// stats fetches a counter snapshot.
func (c *client) stats() (benchfmt.StatsSnapshot, error) {
	reply, err := c.roundTrip("!stats")
	if err != nil {
		return benchfmt.StatsSnapshot{}, err
	}
	return benchfmt.ParseStatsReply(reply)
}

// measureSendAllocs measures steady-state allocations per
// transport.Send over a live two-endpoint TCP fabric in this process —
// the same guard BenchmarkTCPSend enforces, recorded in the report.
// GC is disabled during the measurement so the buffer pools aren't
// flushed mid-run.
func measureSendAllocs() float64 {
	eps, err := transport.NewTCPCluster(2)
	if err != nil {
		return -1
	}
	defer func() {
		for _, ep := range eps {
			_ = ep.Close()
		}
	}()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			m, err := eps[1].Recv()
			if err != nil {
				return
			}
			wire.PutBuf(m.Payload)
		}
	}()
	payload := make([]byte, 128)
	msg := transport.Message{To: 1, Kind: 7, Tag: 42, TID: 3, Payload: payload}
	send := func() {
		if err := eps[0].Send(msg); err != nil {
			panic(err)
		}
	}
	for i := 0; i < 2000; i++ { // warm the pools and connection
		send()
	}
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	return testing.AllocsPerRun(5000, send)
}
