// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments -table1 -table2 -table3 -fig11      # any subset
//	experiments -all                                # everything
//	experiments -figures -out dir                   # VCG/listing dumps
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"autodist/internal/experiments"
)

func main() {
	table1 := flag.Bool("table1", false, "benchmark and graph sizes (Table 1)")
	table2 := flag.Bool("table2", false, "distribution pipeline timing (Table 2)")
	table3 := flag.Bool("table3", false, "profiler overheads (Table 3)")
	fig11 := flag.Bool("fig11", false, "distributed vs centralized performance (Figure 11)")
	msgs := flag.Bool("messages", false, "message-exchange optimisation A/B (messages and bytes, incl. adaptive and replication columns)")
	adaptive := flag.Bool("adaptive", false, "adaptive repartitioning A/B (live migration vs static plan)")
	replicate := flag.Bool("replicate", false, "read-replication A/B (coherence layer vs static plan)")
	figures := flag.Bool("figures", false, "dump Figures 3-9 (VCG graphs and listings)")
	all := flag.Bool("all", false, "run everything")
	outDir := flag.String("out", ".", "directory for figure dumps")
	repeats := flag.Int("repeats", 3, "repetitions for Table 3 timing (min is kept)")
	flag.Parse()

	if *all {
		*table1, *table2, *table3, *fig11, *figures, *msgs, *adaptive, *replicate = true, true, true, true, true, true, true, true
	}
	if !*table1 && !*table2 && !*table3 && !*fig11 && !*figures && !*msgs && !*adaptive && !*replicate {
		flag.Usage()
		os.Exit(2)
	}
	die := func(err error) {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}

	if *table1 {
		rows, err := experiments.Table1()
		if err != nil {
			die(err)
		}
		fmt.Println(experiments.FormatTable1(rows))
	}
	if *table2 {
		rows, err := experiments.Table2()
		if err != nil {
			die(err)
		}
		fmt.Println(experiments.FormatTable2(rows))
	}
	if *fig11 {
		rows, err := experiments.Figure11()
		if err != nil {
			die(err)
		}
		fmt.Println(experiments.FormatFigure11(rows))
	}
	if *msgs {
		rows, err := experiments.TableMessages()
		if err != nil {
			die(err)
		}
		fmt.Println(experiments.FormatTableMessages(rows))
	}
	if *adaptive {
		rows, err := experiments.TableAdaptive()
		if err != nil {
			die(err)
		}
		fmt.Println(experiments.FormatTableAdaptive(rows))
	}
	if *replicate {
		rows, err := experiments.TableReplication()
		if err != nil {
			die(err)
		}
		fmt.Println(experiments.FormatTableReplication(rows))
	}
	if *table3 {
		rows, err := experiments.Table3(*repeats)
		if err != nil {
			die(err)
		}
		fmt.Println(experiments.FormatTable3(rows))
	}
	if *figures {
		dumps := []struct {
			name string
			fn   func() (string, error)
		}{
			{"figure3-crg.vcg", experiments.Figure3},
			{"figure4-odg.vcg", experiments.Figure4},
			{"figure5-quads.txt", experiments.Figure5},
			{"figure6-ast.txt", experiments.Figure6},
			{"figure7-asm.txt", experiments.Figure7},
			{"figure8-9-rewrite.txt", experiments.Figures8And9},
		}
		for _, d := range dumps {
			content, err := d.fn()
			if err != nil {
				die(err)
			}
			path := filepath.Join(*outDir, d.name)
			if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
				die(err)
			}
			fmt.Println("wrote", path)
		}
	}
}
