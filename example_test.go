package autodist_test

import (
	"context"
	"fmt"
	"log"

	"autodist"
)

const exampleSource = `
class Counter {
	int v;
	int bump(int n) { this.v = this.v + n; return this.v; }
}
class Main {
	static void main() {
		Counter c = new Counter();
		int s = 0;
		for (int i = 1; i <= 4; i++) { s = c.bump(i); }
		System.println("total=" + s);
	}
}`

// ExampleCompileString compiles MJ source and runs it sequentially on
// one VM — the monolithic baseline every distributed run is compared
// against.
func ExampleCompileString() {
	prog, err := autodist.CompileString(exampleSource)
	if err != nil {
		log.Fatal(err)
	}
	res, err := prog.Run(autodist.RunOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res.Output)
	// Output: total=10
}

// ExampleAnalysis_Partition runs the dependence analysis and splits the
// object dependence graph across two virtual processors (paper §3).
func ExampleAnalysis_Partition() {
	prog, err := autodist.CompileString(exampleSource)
	if err != nil {
		log.Fatal(err)
	}
	an, err := prog.Analyze()
	if err != nil {
		log.Fatal(err)
	}
	plan, err := an.Partition(2, autodist.PartitionOptions{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	ok := true
	for _, p := range plan.Partition.Parts {
		if p < 0 || p >= plan.K {
			ok = false
		}
	}
	fmt.Printf("k=%d every-vertex-assigned=%v\n", plan.K, ok)
	// Output: k=2 every-vertex-assigned=true
}

// ExampleDistribution_Run executes the full pipeline — compile,
// analyze, partition, rewrite — and runs the program distributed over
// an in-process two-node fabric (paper §5).
func ExampleDistribution_Run() {
	prog, err := autodist.CompileString(exampleSource)
	if err != nil {
		log.Fatal(err)
	}
	an, err := prog.Analyze()
	if err != nil {
		log.Fatal(err)
	}
	plan, err := an.Partition(2, autodist.PartitionOptions{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	dist, err := plan.Rewrite()
	if err != nil {
		log.Fatal(err)
	}
	res, err := dist.Run(autodist.RunOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res.Output)
	// Output: total=10
}

// ExampleDistribution_Deploy serves the program as a resident
// deployment instead of a one-shot batch: main() provisions once,
// then entrypoints are invoked against the live cluster and Shutdown
// drains it.
func ExampleDistribution_Deploy() {
	src := `
class Counter {
	int v;
	int bump(int n) { this.v = this.v + n; return this.v; }
}
class Main {
	static Counter c;
	static void main() { Main.c = new Counter(); }
	static int add(int n) { return Main.c.bump(n); }
}`
	prog, err := autodist.CompileString(src)
	if err != nil {
		log.Fatal(err)
	}
	an, err := prog.Analyze()
	if err != nil {
		log.Fatal(err)
	}
	plan, err := an.Partition(2, autodist.PartitionOptions{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	dist, err := plan.Rewrite()
	if err != nil {
		log.Fatal(err)
	}
	cluster, err := dist.Deploy(autodist.Config{})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := cluster.Invoke("main"); err != nil {
		log.Fatal(err)
	}
	for i := 1; i <= 4; i++ {
		res, err := cluster.Invoke("add", i)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("add(%d)=%v\n", i, res.Value)
	}
	if err := cluster.Shutdown(context.Background()); err != nil {
		log.Fatal(err)
	}
	// Output:
	// add(1)=1
	// add(2)=3
	// add(3)=6
	// add(4)=10
}

// ExamplePlan_RewriteAdaptive runs the same distribution with the
// partition treated as an initial placement: the runtime migrates
// objects towards their observed communication affinity, and the
// program's behaviour is unchanged.
func ExamplePlan_RewriteAdaptive() {
	prog, err := autodist.CompileString(exampleSource)
	if err != nil {
		log.Fatal(err)
	}
	an, err := prog.Analyze()
	if err != nil {
		log.Fatal(err)
	}
	plan, err := an.Partition(2, autodist.PartitionOptions{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	dist, err := plan.RewriteAdaptive()
	if err != nil {
		log.Fatal(err)
	}
	res, err := dist.Run(autodist.RunOptions{AdaptEvery: 4})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res.Output)
	// Output: total=10
}

// ExamplePlan_RewriteWith composes the rewriting modes: Replicate
// stamps read-replication access kinds for the analysis pass's
// read-mostly candidate classes, and RunOptions.Replicate turns on the
// coherence protocol — reads of the shared object are served from
// local replicas and its rare writes invalidate them before
// completing. The program's behaviour is unchanged.
func ExamplePlan_RewriteWith() {
	src := `
class Table {
	int a; int b; int c;
	Table() { this.a = 1; this.b = 2; this.c = 3; }
	int sum() { return this.a + this.b + this.c; }
	void seta(int x) { this.a = x; }
}
class Main {
	static void main() {
		Table t = new Table();
		int s = 0;
		for (int i = 0; i < 5; i++) { s = s + t.sum(); }
		t.seta(10);
		System.println("total=" + (s + t.sum()));
	}
}`
	prog, err := autodist.CompileString(src)
	if err != nil {
		log.Fatal(err)
	}
	an, err := prog.Analyze()
	if err != nil {
		log.Fatal(err)
	}
	plan, err := an.Partition(2, autodist.PartitionOptions{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	dist, err := plan.RewriteWith(autodist.RewriteOptions{Replicate: true})
	if err != nil {
		log.Fatal(err)
	}
	res, err := dist.Run(autodist.RunOptions{Replicate: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res.Output)
	// Output: total=45
}
