package autodist_test

// One testing.B benchmark per paper table/figure, so
// `go test -bench=. -benchmem` regenerates the whole evaluation. Each
// benchmark prints its formatted table once (on the first iteration) and
// then times the underlying pipeline work.

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"autodist"
	"autodist/internal/analysis"
	"autodist/internal/bench"
	"autodist/internal/bytecode"
	"autodist/internal/compile"
	"autodist/internal/experiments"
	"autodist/internal/jit"
	"autodist/internal/partition"
	"autodist/internal/profiler"
	"autodist/internal/rewrite"
	"autodist/internal/runtime"
	"autodist/internal/vm"
)

var printOnce sync.Map

func printTable(b *testing.B, key, content string) {
	if _, dup := printOnce.LoadOrStore(key, true); !dup {
		fmt.Printf("\n%s\n", content)
	}
	b.ReportAllocs()
}

// BenchmarkTable1GraphConstruction regenerates Table 1 and times the
// full analysis (RTA → CRG → ODG) over the eight benchmarks.
func BenchmarkTable1GraphConstruction(b *testing.B) {
	rows, err := experiments.Table1()
	if err != nil {
		b.Fatal(err)
	}
	printTable(b, "table1", experiments.FormatTable1(rows))
	progs := compiledTable1(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, bp := range progs {
			if _, err := analysis.Analyze(bp); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkTable2DistributionPipeline regenerates Table 2 and times the
// repartitioning-relevant phases (ODG construction + partitioning +
// rewriting), the phases the paper's adaptive loop would re-run.
func BenchmarkTable2DistributionPipeline(b *testing.B) {
	rows, err := experiments.Table2()
	if err != nil {
		b.Fatal(err)
	}
	printTable(b, "table2", experiments.FormatTable2(rows))
	progs := compiledTable1(b)
	results := make([]*analysis.Result, len(progs))
	for i, bp := range progs {
		res, err := analysis.Analyze(bp)
		if err != nil {
			b.Fatal(err)
		}
		results[i] = res
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j, bp := range progs {
			res := results[j]
			if _, err := partition.Partition(res.ODG.Graph, partition.Options{K: 2, Seed: 1, Epsilon: experiments.BalanceEps}); err != nil {
				b.Fatal(err)
			}
			if _, err := rewrite.Rewrite(bp, res, 2); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkFigure11DistributedExecution regenerates Figure 11 plus the
// message-exchange optimisation A/B table, and times one full
// distributed run of the bank-style crypt benchmark per optimisation
// setting, reporting the protocol counters as benchmark metrics.
func BenchmarkFigure11DistributedExecution(b *testing.B) {
	rows, err := experiments.Figure11()
	if err != nil {
		b.Fatal(err)
	}
	printTable(b, "fig11", experiments.FormatFigure11(rows))
	mrows, err := experiments.TableMessages()
	if err != nil {
		b.Fatal(err)
	}
	printTable(b, "fig11msgs", experiments.FormatTableMessages(mrows))
	p, err := bench.Get("crypt")
	if err != nil {
		b.Fatal(err)
	}
	prog, err := autodist.CompileString(p.Source)
	if err != nil {
		b.Fatal(err)
	}
	for _, cfg := range []struct {
		name        string
		unoptimized bool
	}{{"Optimized", false}, {"Unoptimized", true}} {
		b.Run(cfg.name, func(b *testing.B) {
			var last *autodist.RunResult
			for i := 0; i < b.N; i++ {
				an, err := prog.Analyze()
				if err != nil {
					b.Fatal(err)
				}
				plan, err := an.Partition(2, autodist.PartitionOptions{Seed: 1, Epsilon: experiments.BalanceEps})
				if err != nil {
					b.Fatal(err)
				}
				dist, err := plan.Rewrite()
				if err != nil {
					b.Fatal(err)
				}
				last, err = dist.Run(autodist.RunOptions{Unoptimized: cfg.unoptimized})
				if err != nil {
					b.Fatal(err)
				}
			}
			if last != nil {
				b.ReportMetric(float64(last.Messages), "msgs/run")
				b.ReportMetric(float64(last.BytesSent), "wire-B/run")
				b.ReportMetric(float64(last.CacheHits), "cachehits/run")
				b.ReportMetric(float64(last.AsyncCalls), "async/run")
				b.ReportMetric(float64(last.BatchFrames), "batches/run")
			}
		})
	}
}

// BenchmarkAdaptiveRepartitioning runs the phase-shifting workload —
// whose hot object set moves mid-run — with the partition as a contract
// versus as an initial placement with live object migration, exposing
// the message counts and migration activity as metrics.
func BenchmarkAdaptiveRepartitioning(b *testing.B) {
	rows, err := experiments.TableAdaptive()
	if err != nil {
		b.Fatal(err)
	}
	printTable(b, "adaptive", experiments.FormatTableAdaptive(rows))
	prog, err := autodist.CompileString(experiments.PhaseShiftSource)
	if err != nil {
		b.Fatal(err)
	}
	for _, cfg := range []struct {
		name     string
		adaptive bool
	}{{"Static", false}, {"Adaptive", true}} {
		b.Run(cfg.name, func(b *testing.B) {
			var last *autodist.RunResult
			for i := 0; i < b.N; i++ {
				an, err := prog.Analyze()
				if err != nil {
					b.Fatal(err)
				}
				plan, err := an.Partition(2, autodist.PartitionOptions{Seed: 1, Epsilon: experiments.BalanceEps})
				if err != nil {
					b.Fatal(err)
				}
				var dist *autodist.Distribution
				if cfg.adaptive {
					dist, err = plan.RewriteAdaptive()
				} else {
					dist, err = plan.Rewrite()
				}
				if err != nil {
					b.Fatal(err)
				}
				last, err = dist.Run(autodist.RunOptions{})
				if err != nil {
					b.Fatal(err)
				}
			}
			if last != nil {
				b.ReportMetric(float64(last.Messages), "msgs/run")
				b.ReportMetric(float64(last.BytesSent), "wire-B/run")
				b.ReportMetric(float64(last.Migrations), "migrations/run")
				b.ReportMetric(float64(last.Forwards), "forwards/run")
			}
		})
	}
}

// BenchmarkTable3ProfilerOverheads regenerates Table 3 and times the
// cheapest-vs-dearest metric pair on the method benchmark so the
// instrumentation/sampling gap is visible in ns/op.
func BenchmarkTable3ProfilerOverheads(b *testing.B) {
	rows, err := experiments.Table3(5)
	if err != nil {
		b.Fatal(err)
	}
	printTable(b, "table3", experiments.FormatTable3(rows))
	p, err := bench.Get("method")
	if err != nil {
		b.Fatal(err)
	}
	prog, err := autodist.CompileString(p.Source)
	if err != nil {
		b.Fatal(err)
	}
	for _, metric := range []autodist.ProfileMetric{profiler.None, profiler.HotMethods, profiler.MethodDuration} {
		b.Run(strings.ReplaceAll(metric.String(), " ", ""), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := prog.Profile(metric, autodist.RunOptions{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFigure3And4GraphExport times the Bank example's VCG dumps.
func BenchmarkFigure3And4GraphExport(b *testing.B) {
	f3, err := experiments.Figure3()
	if err != nil {
		b.Fatal(err)
	}
	f4, err := experiments.Figure4()
	if err != nil {
		b.Fatal(err)
	}
	printTable(b, "fig34", fmt.Sprintf("Figure 3 (CRG): %d bytes of VCG; Figure 4 (ODG): %d bytes of VCG", len(f3), len(f4)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure3(); err != nil {
			b.Fatal(err)
		}
		if _, err := experiments.Figure4(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure5Through7Codegen times quad translation plus BURS code
// generation for both targets over the Figure 5 example.
func BenchmarkFigure5Through7Codegen(b *testing.B) {
	f5, err := experiments.Figure5()
	if err != nil {
		b.Fatal(err)
	}
	f7, err := experiments.Figure7()
	if err != nil {
		b.Fatal(err)
	}
	printTable(b, "fig567", "Figure 5 (quads):\n"+f5+"\nFigure 7 (x86 + StrongARM):\n"+f7)
	prog, err := autodist.CompileString(experiments.Figure5ExampleSource)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, target := range autodist.Targets() {
			if _, err := prog.GenerateAssembly("Example", "ex", target); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkFigure8And9Rewriting times the communication-generation
// transformation of the Bank example.
func BenchmarkFigure8And9Rewriting(b *testing.B) {
	out, err := experiments.Figures8And9()
	if err != nil {
		b.Fatal(err)
	}
	printTable(b, "fig89", fmt.Sprintf("Figures 8-9 rewrite listing: %d bytes (run cmd/experiments -figures for full dump)", len(out)))
	bp, _, err := compile.CompileSource(experiments.BankExampleSource)
	if err != nil {
		b.Fatal(err)
	}
	res, err := analysis.Analyze(bp)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := partition.Partition(res.ODG.Graph, partition.Options{K: 2, Seed: 1}); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rewrite.Rewrite(bp, res, 2); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationPartitioners compares the multilevel partitioner
// against the baselines on the db benchmark's ODG — the design-choice
// ablation for §3.
func BenchmarkAblationPartitioners(b *testing.B) {
	bp, err := compileBenchProg("db")
	if err != nil {
		b.Fatal(err)
	}
	res, err := analysis.Analyze(bp)
	if err != nil {
		b.Fatal(err)
	}
	var report strings.Builder
	report.WriteString("Ablation: partitioning method vs ODG edgecut (db benchmark)\n")
	for _, m := range []partition.Method{partition.Multilevel, partition.FlatKL, partition.RoundRobin, partition.Random} {
		r, err := partition.Partition(res.ODG.Graph.Clone(), partition.Options{K: 2, Seed: 1, Epsilon: experiments.BalanceEps, Method: m})
		if err != nil {
			b.Fatal(err)
		}
		fmt.Fprintf(&report, "  %-12s edgecut=%-8d cut-edges=%d imbalance=%.2f\n", m, r.EdgeCut, r.CutEdges, r.Imbalance)
	}
	printTable(b, "ablation", report.String())
	for _, m := range []partition.Method{partition.Multilevel, partition.FlatKL} {
		b.Run(m.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := partition.Partition(res.ODG.Graph.Clone(), partition.Options{K: 2, Seed: 1, Method: m}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func compiledTable1(b *testing.B) []*bytecode.Program {
	var out []*bytecode.Program
	for _, name := range bench.Table1Names() {
		bp, err := compileBenchProg(name)
		if err != nil {
			b.Fatal(err)
		}
		out = append(out, bp)
	}
	return out
}

func compileBenchProg(name string) (*bytecode.Program, error) {
	p, err := bench.Get(name)
	if err != nil {
		return nil, err
	}
	bp, _, err := compile.CompileSource(p.Source)
	if err != nil {
		return nil, err
	}
	return bp, nil
}

// BenchmarkInvokeThroughput measures the deployment lifecycle's
// amortisation: invocations/sec on a resident cluster (Deploy once,
// Invoke per request) versus spinning up a fresh one-shot Run for
// every request. Both serve the same entrypoint workload on the same
// pre-built distribution; the resident path also reports its
// per-invocation message cost, which the write-once cache drives to
// zero after the first request.
func BenchmarkInvokeThroughput(b *testing.B) {
	b.Run("ResidentInvoke", func(b *testing.B) {
		cluster, err := deployServiceErr(2, autodist.Config{})
		if err != nil {
			b.Fatal(err)
		}
		defer cluster.Shutdown(context.Background())
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := cluster.Invoke("sum"); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		stats := cluster.Stats()
		b.ReportMetric(float64(stats.Messages)/float64(b.N), "msgs/invoke")
	})
	b.Run("ResidentInvokeCachedRead", func(b *testing.B) {
		// A write-once read: after the first request fills the cache,
		// every later invocation is served without touching the wire —
		// the cross-invocation retention a resident deployment buys.
		cluster, err := deployServiceErr(2, autodist.Config{})
		if err != nil {
			b.Fatal(err)
		}
		defer cluster.Shutdown(context.Background())
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := cluster.Invoke("label"); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		stats := cluster.Stats()
		b.ReportMetric(float64(stats.Messages)/float64(b.N), "msgs/invoke")
		b.ReportMetric(float64(stats.RetainedHits)/float64(b.N), "retained-hits/invoke")
	})
	b.Run("FreshRunPerRequest", func(b *testing.B) {
		dist, err := buildServiceDist(2)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		var last *autodist.RunResult
		for i := 0; i < b.N; i++ {
			last, err = dist.Run(autodist.RunOptions{})
			if err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		if last != nil {
			b.ReportMetric(float64(last.Messages), "msgs/run")
		}
	})
}

// BenchmarkConcurrentInvoke measures parallel Invoke across the
// cluster: the same service workload (a compute entrypoint whose
// remote read is cache-served after the first fetch) driven by 8
// client goroutines against a serialised deployment (MaxConcurrent=1,
// the paper's single-logical-thread protocol) and a concurrent one
// (MaxConcurrent=8, one logical thread per in-flight invocation). On
// a multi-core host the concurrent deployment should clear at least
// twice the serialised invocations/sec (TestConcurrentInvokeScales
// enforces exactly that); invocations/sec is reported as a metric
// either way.
func BenchmarkConcurrentInvoke(b *testing.B) {
	const clients, workN = 8, 4000
	for _, conc := range []int{1, 8} {
		b.Run(fmt.Sprintf("MaxConcurrent%d", conc), func(b *testing.B) {
			cluster, err := deployServiceErr(2, autodist.Config{MaxConcurrent: conc})
			if err != nil {
				b.Fatal(err)
			}
			defer cluster.Shutdown(context.Background())
			// Warm the write-once cache so every measured invocation is
			// compute + a local cache hit, the steady state.
			if _, err := cluster.Invoke("work", 1); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			start := time.Now()
			var wg sync.WaitGroup
			jobs := make(chan struct{})
			errs := make(chan error, clients)
			for c := 0; c < clients; c++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					// On error, record it once and keep draining jobs —
					// a dead worker must not leave the dispatcher
					// blocked on the unbuffered channel.
					failed := false
					for range jobs {
						if failed {
							continue
						}
						res, err := cluster.Invoke("work", workN)
						if err != nil {
							errs <- err
							failed = true
							continue
						}
						if res.Value != int64(workN*7) {
							errs <- fmt.Errorf("work(%d) = %v", workN, res.Value)
							failed = true
						}
					}
				}()
			}
			for i := 0; i < b.N; i++ {
				jobs <- struct{}{}
			}
			close(jobs)
			wg.Wait()
			b.StopTimer()
			close(errs)
			for err := range errs {
				b.Fatal(err)
			}
			b.ReportMetric(float64(b.N)/time.Since(start).Seconds(), "invocations/s")
		})
	}
}

// BenchmarkCompiledKernels times the tiered-execution kernels on both
// tiers — sub-benchmark Interp runs the pure interpreter, Compiled the
// quad→Go compiled tier — and reports the resulting speedup as a
// metric, so `go test -bench=CompiledKernels` regenerates the numbers
// committed to BENCH_compile.json. Output equality against each
// kernel's golden checksum is enforced on every iteration.
func BenchmarkCompiledKernels(b *testing.B) {
	for _, name := range bench.CompileKernelNames() {
		p, err := bench.Get(name)
		if err != nil {
			b.Fatal(err)
		}
		build := func(compileTier bool) (*vm.VM, *strings.Builder) {
			bp, _, err := compile.CompileSource(p.Source)
			if err != nil {
				b.Fatal(err)
			}
			m, err := vm.New(bp)
			if err != nil {
				b.Fatal(err)
			}
			sb := &strings.Builder{}
			m.Out = sb
			m.MaxSteps = 10_000_000_000
			if compileTier {
				m.EnableJIT(1, jit.Backend(m))
			}
			return m, sb
		}
		nsPerOp := map[string]float64{}
		for _, tier := range []struct {
			name    string
			compile bool
		}{{"Interp", false}, {"Compiled", true}} {
			b.Run(name+"/"+tier.name, func(b *testing.B) {
				m, sb := build(tier.compile)
				b.ResetTimer()
				start := time.Now()
				for i := 0; i < b.N; i++ {
					sb.Reset()
					if err := m.RunMain(); err != nil {
						b.Fatal(err)
					}
					if sb.String() != p.ExpectOutput {
						b.Fatalf("%s (%s): output %q, want %q", name, tier.name, sb.String(), p.ExpectOutput)
					}
				}
				b.StopTimer()
				nsPerOp[tier.name] = float64(time.Since(start).Nanoseconds()) / float64(b.N)
				if tier.compile && nsPerOp["Interp"] > 0 {
					b.ReportMetric(nsPerOp["Interp"]/nsPerOp["Compiled"], "speedup-x")
				}
			})
		}
	}
}

// BenchmarkReadReplication regenerates the replication A/B table and
// times the readmostly workload under the static plan and the
// coherence layer, reporting the message economics as metrics so the
// numbers cited in the docs cannot rot silently.
func BenchmarkReadReplication(b *testing.B) {
	rows, err := experiments.TableReplication()
	if err != nil {
		b.Fatal(err)
	}
	printTable(b, "replication", experiments.FormatTableReplication(rows))
	var static, replicated runtime.NodeStats
	for i := 0; i < b.N; i++ {
		var err error
		static, replicated, err = experiments.RunReadMostlyAB()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(static.MessagesSent), "static-msgs/run")
	b.ReportMetric(float64(replicated.MessagesSent), "repl-msgs/run")
	b.ReportMetric(float64(replicated.ReplicaHits), "replica-hits/run")
	b.ReportMetric(float64(replicated.Invalidations), "invalidations/run")
}
