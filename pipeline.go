package autodist

import (
	"fmt"
	"io"
	"strings"
	"time"

	"autodist/internal/analysis"
	"autodist/internal/bytecode"
	"autodist/internal/codegen"
	"autodist/internal/compile"
	"autodist/internal/lang"
	"autodist/internal/partition"
	"autodist/internal/profiler"
	"autodist/internal/quad"
	"autodist/internal/rewrite"
	"autodist/internal/runtime"
	"autodist/internal/transport"
	"autodist/internal/vm"
)

// Program is a compiled MJ program: the unit the distribution pipeline
// operates on.
type Program struct {
	Bytecode *bytecode.Program
	Checked  *lang.Program
}

// CompileString parses, type-checks and compiles MJ source files into a
// Program. Multiple sources form one compilation unit.
func CompileString(srcs ...string) (*Program, error) {
	bp, checked, err := compile.CompileSource(srcs...)
	if err != nil {
		return nil, err
	}
	return &Program{Bytecode: bp, Checked: checked}, nil
}

// RunOptions configures sequential and distributed execution.
type RunOptions struct {
	// Out receives program output; defaults to io.Discard.
	Out io.Writer
	// MaxSteps bounds interpretation (0 = default safety limit).
	MaxSteps uint64
	// CPUSpeeds enables the virtual clock: one cycles-per-second
	// figure per node (sequential runs use CPUSpeeds[0]).
	CPUSpeeds []float64
	// Net models communication costs on the virtual clock.
	Net *NetModel
	// TCP executes over local TCP sockets instead of in-process
	// channels (distributed runs only).
	TCP bool
	// Unoptimized disables the message-exchange optimisations
	// (proxy-side caching of write-once fields, fire-and-forget
	// asynchronous void calls, batching) for A/B measurement.
	Unoptimized bool
	// AdaptEvery sets the adaptive-repartitioning epoch length in
	// synchronous requests. It only applies to distributions built with
	// Plan.RewriteAdaptive, which default to DefaultAdaptEvery when
	// this is zero; on static distributions it must stay zero.
	AdaptEvery int
	// Replicate enables the coherence layer's read-replication
	// protocol: proxies satisfy reads of replication-candidate classes
	// from local snapshots, and writes invalidate every replica before
	// completing. It requires a distribution built with
	// RewriteOptions.Replicate (fail-fast otherwise) and conflicts
	// with Unoptimized. Off, a replicated distribution still runs —
	// its stamped access kinds degrade to plain synchronous accesses
	// (the A/B baseline on identical bytecode).
	Replicate bool
}

// DefaultAdaptEvery is the adaptation epoch applied to adaptive
// distributions when RunOptions.AdaptEvery is zero.
const DefaultAdaptEvery = 32

// NetModel re-exports the runtime's communication cost model.
type NetModel = runtime.NetModel

const defaultMaxSteps = 2_000_000_000

// RunResult reports an execution's outcome.
type RunResult struct {
	// Output is the program's printed output when Out was nil.
	Output string
	// Wall is the host-measured execution time.
	Wall time.Duration
	// SimSeconds is the virtual-clock completion time (0 without
	// CPUSpeeds).
	SimSeconds float64
	// Messages and Bytes count distribution traffic (0 sequentially).
	Messages int64
	// BytesSent counts payload bytes moved between nodes.
	BytesSent int64
	// CacheHits counts remote field reads served from the proxy-side
	// cache (zero messages each).
	CacheHits int64
	// AsyncCalls counts void invocations executed as fire-and-forget
	// asynchronous messages; BatchFrames counts the transport frames
	// that carried them after aggregation.
	AsyncCalls  int64
	BatchFrames int64
	// Migrations counts live object migrations executed by the
	// adaptive-repartitioning subsystem; Forwards counts stale
	// requests relayed to an object's new home during handoff. Both
	// are zero on static (non-adaptive) runs.
	Migrations int64
	Forwards   int64
	// ReplicaHits counts reads served from a local replica (zero
	// messages each); ReplicaFetches counts REPLICATE exchanges that
	// delivered a snapshot; Invalidations counts INVALIDATE frames
	// writes pushed to replica holders. All are zero unless the run
	// used RunOptions.Replicate on a replicated distribution.
	ReplicaHits    int64
	ReplicaFetches int64
	Invalidations  int64
}

// Run executes the program sequentially on one VM.
func (p *Program) Run(opts RunOptions) (*RunResult, error) {
	machine, err := vm.New(p.Bytecode.Clone())
	if err != nil {
		return nil, err
	}
	var sb strings.Builder
	if opts.Out != nil {
		machine.Out = opts.Out
	} else {
		machine.Out = &sb
	}
	machine.MaxSteps = opts.MaxSteps
	if machine.MaxSteps == 0 {
		machine.MaxSteps = defaultMaxSteps
	}
	if len(opts.CPUSpeeds) > 0 {
		machine.Time = &vm.TimeModel{CyclesPerSecond: opts.CPUSpeeds[0]}
	}
	start := time.Now()
	if err := machine.RunMain(); err != nil {
		return nil, err
	}
	return &RunResult{
		Output:     sb.String(),
		Wall:       time.Since(start),
		SimSeconds: machine.SimSeconds(),
	}, nil
}

// Profile runs the program under one profiler metric and returns the
// profiler alongside the run result.
func (p *Program) Profile(metric ProfileMetric, opts RunOptions) (*profiler.Profiler, *RunResult, error) {
	machine, err := vm.New(p.Bytecode.Clone())
	if err != nil {
		return nil, nil, err
	}
	var sb strings.Builder
	if opts.Out != nil {
		machine.Out = opts.Out
	} else {
		machine.Out = &sb
	}
	machine.MaxSteps = opts.MaxSteps
	if machine.MaxSteps == 0 {
		machine.MaxSteps = defaultMaxSteps
	}
	prof := profiler.Attach(machine, metric)
	start := time.Now()
	if err := machine.RunMain(); err != nil {
		return nil, nil, err
	}
	return prof, &RunResult{Output: sb.String(), Wall: time.Since(start)}, nil
}

// ProfileMetric re-exports the profiler's metric enum.
type ProfileMetric = profiler.Metric

// Profiler metrics (paper §6), plus the field-access metric whose
// per-class read/write counts sharpen the replication classification
// (analysis.ReplicaIntensity.ApplyProfile).
const (
	ProfileNone             = profiler.None
	ProfileMethodDuration   = profiler.MethodDuration
	ProfileMethodFrequency  = profiler.MethodFrequency
	ProfileHotMethods       = profiler.HotMethods
	ProfileHotPaths         = profiler.HotPaths
	ProfileMemoryAllocation = profiler.MemoryAllocation
	ProfileDynamicCallGraph = profiler.DynamicCallGraph
	ProfileFieldAccess      = profiler.FieldAccess
)

// Analysis is the dependence-analysis stage output.
type Analysis struct {
	Program *Program
	Result  *analysis.Result
}

// Analyze builds the call graph, class relation graph and object
// dependence graph (paper §2).
func (p *Program) Analyze() (*Analysis, error) {
	res, err := analysis.Analyze(p.Bytecode)
	if err != nil {
		return nil, err
	}
	return &Analysis{Program: p, Result: res}, nil
}

// WriteCRG emits the class relation graph in VCG format (Figure 3).
func (a *Analysis) WriteCRG(w io.Writer) error { return a.Result.CRG.Graph.VCG(w) }

// WriteODG emits the object dependence graph in VCG format (Figure 4);
// partition annotations appear once Partition has run.
func (a *Analysis) WriteODG(w io.Writer) error { return a.Result.ODG.Graph.VCG(w) }

// PartitionOptions re-exports the partitioner's options.
type PartitionOptions = partition.Options

// Partition methods.
const (
	PartitionMultilevel = partition.Multilevel
	PartitionFlatKL     = partition.FlatKL
	PartitionRoundRobin = partition.RoundRobin
	PartitionRandom     = partition.Random
)

// Plan is the partitioning stage output: every object assigned a
// virtual processor.
type Plan struct {
	Analysis  *Analysis
	K         int
	Partition *partition.Result
}

// Partition splits the ODG into k parts (paper §3). opts.K is
// overridden by k.
func (a *Analysis) Partition(k int, opts PartitionOptions) (*Plan, error) {
	opts.K = k
	res, err := partition.Partition(a.Result.ODG.Graph, opts)
	if err != nil {
		return nil, err
	}
	return &Plan{Analysis: a, K: k, Partition: res}, nil
}

// Distribution is the communication-generation stage output: one
// rewritten program per node.
type Distribution struct {
	Plan   *Plan
	Result *rewrite.Result
}

// Rewrite generates per-node programs with communication calls
// (paper §4.2, Figures 8–9). The partition is a contract: objects stay
// where the plan put them for the whole run.
func (pl *Plan) Rewrite() (*Distribution, error) {
	res, err := rewrite.Rewrite(pl.Analysis.Program.Bytecode, pl.Analysis.Result, pl.K)
	if err != nil {
		return nil, err
	}
	return &Distribution{Plan: pl, Result: res}, nil
}

// RewriteAdaptive generates per-node programs for adaptive
// repartitioning: the partition is only the initial placement, every
// instance access is mediated by the runtime's dynamic ownership map,
// and Run starts the coordinator that migrates objects towards their
// observed communication affinity.
func (pl *Plan) RewriteAdaptive() (*Distribution, error) {
	return pl.RewriteWith(RewriteOptions{Adaptive: true})
}

// RewriteOptions selects the rewriting mode: the zero value is the
// static plan-as-contract rewrite, Adaptive enables live migration,
// Replicate stamps read-replication access kinds for the analysis
// pass's read-mostly candidate classes. The two compose.
type RewriteOptions = rewrite.Options

// RewriteWith generates per-node programs under the given mode
// options (see RewriteOptions). Run it with RunOptions.Replicate to
// enable the replication protocol on a replicated distribution.
func (pl *Plan) RewriteWith(opts RewriteOptions) (*Distribution, error) {
	res, err := rewrite.RewriteWith(pl.Analysis.Program.Bytecode, pl.Analysis.Result, pl.K, opts)
	if err != nil {
		return nil, err
	}
	return &Distribution{Plan: pl, Result: res}, nil
}

// Run executes the distributed program (paper §5): one node per
// partition, ExecutionStarter on node 0.
func (d *Distribution) Run(opts RunOptions) (*RunResult, error) {
	k := d.Plan.K
	var eps []transport.Endpoint
	if opts.TCP {
		var err error
		eps, err = transport.NewTCPCluster(k)
		if err != nil {
			return nil, err
		}
	} else {
		eps = transport.NewInProc(k)
	}
	var sb strings.Builder
	out := opts.Out
	if out == nil {
		out = &sb
	}
	maxSteps := opts.MaxSteps
	if maxSteps == 0 {
		maxSteps = defaultMaxSteps
	}
	progs := make([]*bytecode.Program, k)
	for i, np := range d.Result.Nodes {
		progs[i] = np
	}
	adaptEvery := opts.AdaptEvery
	if d.Result.Plan.Adaptive && adaptEvery == 0 {
		adaptEvery = DefaultAdaptEvery
	}
	cluster, err := runtime.NewCluster(progs, d.Result.Plan, eps, runtime.Options{
		Out: out, CPUSpeeds: opts.CPUSpeeds, Net: opts.Net, MaxSteps: maxSteps,
		Unoptimized: opts.Unoptimized, AdaptEvery: adaptEvery, Replicate: opts.Replicate,
	})
	if err != nil {
		return nil, err
	}
	start := time.Now()
	if err := cluster.Run(); err != nil {
		return nil, err
	}
	stats := cluster.TotalStats()
	return &RunResult{
		Output:         sb.String(),
		Wall:           time.Since(start),
		SimSeconds:     cluster.SimSeconds(),
		Messages:       stats.MessagesSent,
		BytesSent:      stats.BytesSent,
		CacheHits:      stats.CacheHits,
		AsyncCalls:     stats.AsyncCalls,
		BatchFrames:    stats.BatchFrames,
		Migrations:     stats.Migrations,
		Forwards:       stats.Forwards,
		ReplicaHits:    stats.ReplicaHits,
		ReplicaFetches: stats.ReplicaFetches,
		Invalidations:  stats.Invalidations,
	}, nil
}

// Disassemble renders a method's bytecode (empty string if missing).
func (p *Program) Disassemble(class, method string) string {
	cf := p.Bytecode.Class(class)
	if cf == nil {
		return ""
	}
	m := cf.MethodByName(method)
	if m == nil {
		return ""
	}
	return bytecode.DisasmMethod(cf, m)
}

// Quads renders a method's quad IR in the paper's Figure 5 format.
func (p *Program) Quads(class, method string) (string, error) {
	cf := p.Bytecode.Class(class)
	if cf == nil {
		return "", fmt.Errorf("autodist: class %s not found", class)
	}
	m := cf.MethodByName(method)
	if m == nil {
		return "", fmt.Errorf("autodist: method %s.%s not found", class, method)
	}
	f, err := quad.Translate(cf, m)
	if err != nil {
		return "", err
	}
	return f.Format(), nil
}

// GenerateAssembly emits native assembly for a method on the named
// target ("x86" or "strongarm", Figure 7).
func (p *Program) GenerateAssembly(class, method, target string) (string, error) {
	cf := p.Bytecode.Class(class)
	if cf == nil {
		return "", fmt.Errorf("autodist: class %s not found", class)
	}
	m := cf.MethodByName(method)
	if m == nil {
		return "", fmt.Errorf("autodist: method %s.%s not found", class, method)
	}
	f, err := quad.Translate(cf, m)
	if err != nil {
		return "", err
	}
	return codegen.Generate(f, target)
}

// Targets lists the code-generation targets.
func Targets() []string { return codegen.Targets() }
