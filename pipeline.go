package autodist

import (
	"context"
	"fmt"
	"io"
	"strings"
	"time"

	"autodist/internal/analysis"
	"autodist/internal/bytecode"
	"autodist/internal/codegen"
	"autodist/internal/compile"
	"autodist/internal/jit"
	"autodist/internal/lang"
	"autodist/internal/partition"
	"autodist/internal/profiler"
	"autodist/internal/quad"
	"autodist/internal/rewrite"
	"autodist/internal/runtime"
	"autodist/internal/transport"
	"autodist/internal/vm"
)

// Program is a compiled MJ program: the unit the distribution pipeline
// operates on.
type Program struct {
	Bytecode *bytecode.Program
	Checked  *lang.Program
}

// CompileString parses, type-checks and compiles MJ source files into a
// Program. Multiple sources form one compilation unit.
func CompileString(srcs ...string) (*Program, error) {
	bp, checked, err := compile.CompileSource(srcs...)
	if err != nil {
		return nil, err
	}
	return &Program{Bytecode: bp, Checked: checked}, nil
}

// Config configures execution — sequential, one-shot distributed, or a
// resident deployment. It is the one validated home for what used to
// be an accreted flag soup: Validate is the single source of truth for
// incoherent combinations, shared by Deploy, Run and the CLI
// front-ends (cmd/jdrun builds a Config from its flags and validates
// it instead of re-checking pairwise conflicts by hand).
type Config struct {
	// K is the node count the configuration targets. Deploy and
	// Distribution.Run fill it from the plan; CLI front-ends set it
	// from their -k flag so Validate can reject distribution-only
	// options on sequential invocations. Zero or one means sequential.
	K int
	// Out receives program output; defaults to capturing into the
	// result's Output field.
	Out io.Writer
	// MaxSteps bounds interpretation (0 = default safety limit).
	MaxSteps uint64
	// CPUSpeeds enables the virtual clock: one cycles-per-second
	// figure per node (sequential runs use CPUSpeeds[0]).
	CPUSpeeds []float64
	// Net models communication costs on the virtual clock.
	Net *NetModel
	// TCP executes over local TCP sockets instead of in-process
	// channels (distributed runs only).
	TCP bool
	// TCPNoCoalesce disables the TCP transport's per-connection write
	// combiner, restoring one Write syscall per frame. The byte stream
	// is identical either way (coalescing only changes Write
	// boundaries); this exists for A/B measurement and bisection.
	// Requires TCP.
	TCPNoCoalesce bool
	// TCPCompress negotiates DEFLATE segment framing on every TCP
	// connection: batches of frames travel as compressed segments,
	// shrinking payload-heavy traffic (object snapshots, large
	// argument arrays) at some CPU cost. Off by default. Requires TCP.
	TCPCompress bool
	// Unoptimized disables the message-exchange optimisations
	// (proxy-side caching of write-once fields, fire-and-forget
	// asynchronous void calls, batching) for A/B measurement.
	Unoptimized bool
	// NoFuse disables access fusion for A/B measurement: runs of
	// consecutive remote accesses execute as one DEPENDENCE round trip
	// each (the pre-fusion protocol, byte-identical on the wire)
	// instead of one DEPSEQ frame per destination. Fusion is on by
	// default because it only changes how many frames carry the
	// accesses, never which accesses go remote or their order.
	NoFuse bool
	// Adaptive records that the partition is an initial placement with
	// live object migration. Deploy and Distribution.Run fill it from
	// the plan (distributions built with Plan.RewriteAdaptive or
	// RewriteOptions.Adaptive); CLI front-ends set it from -adaptive.
	Adaptive bool
	// AdaptEvery sets the adaptive-repartitioning epoch length in
	// synchronous requests. It only applies to adaptive distributions,
	// which default to DefaultAdaptEvery when this is zero; on static
	// distributions it must stay zero.
	AdaptEvery int
	// Replicate enables the coherence layer's read-replication
	// protocol: proxies satisfy reads of replication-candidate classes
	// from local snapshots, and writes invalidate every replica before
	// completing. It requires a distribution built with
	// RewriteOptions.Replicate (fail-fast otherwise) and conflicts
	// with Unoptimized. Off, a replicated distribution still runs —
	// its stamped access kinds degrade to plain synchronous accesses
	// (the A/B baseline on identical bytecode).
	Replicate bool
	// FailureRecovery makes a deployment survive node loss: every
	// endpoint is wrapped with the transport reliability layer
	// (sequence-numbered frames, ack-driven retransmission, heartbeat
	// failure detection) and the runtime's recovery protocol is armed —
	// a dead node's replicated objects are promoted on survivors,
	// ownership metadata is repaired cluster-wide, and invocations that
	// hit the dead node are re-driven with their completed prefix
	// replayed from dedup journals (exactly-once effects). Node 0 hosts
	// the ExecutionStarter and the recovery coordinator; its loss is
	// not survivable. Requires K ≥ 2. Off (the default), the wire
	// stream is byte-identical to a non-recovering deployment.
	FailureRecovery bool
	// HeartbeatInterval is the reliability layer's liveness-probe
	// period (0 = 25ms); a peer silent for four intervals is declared
	// dead. Requires FailureRecovery.
	HeartbeatInterval time.Duration
	// RetransmitTimeout is the base ack timeout before a frame is
	// resent (0 = 50ms), backed off exponentially per attempt. Requires
	// FailureRecovery.
	RetransmitTimeout time.Duration
	// ChaosSeed, ChaosDrop, ChaosDup and ChaosReorder configure the
	// deterministic fault-injection layer under the reliability layer:
	// per-link seeded random streams drop, duplicate or reorder frames
	// with the given probabilities (each in [0,1)), replaying the same
	// fault pattern for the same seed. The reliability layer must heal
	// everything injected. Chaos requires FailureRecovery; all-zero
	// probabilities inject nothing (the wrapper still enables
	// Cluster.FailNode).
	ChaosSeed    int64
	ChaosDrop    float64
	ChaosDup     float64
	ChaosReorder float64
	// MaxConcurrent is the number of entrypoint invocations a deployed
	// cluster runs at once: Cluster.Invoke admits that many concurrent
	// logical threads (each with its own thread id on the wire and
	// per-thread execution contexts on every node), and callers beyond
	// it queue. Zero or one — the default — serialises invocations,
	// preserving the paper's single-logical-thread protocol exactly.
	// Values above one require a distributed deployment (K ≥ 2).
	//
	// Concurrency contract: mutual exclusion between logical threads
	// covers every rewriter-mediated access — all accesses to
	// dependent classes (classes with cross-partition instances), and
	// every instance access under an adaptive plan
	// (Plan.RewriteAdaptive), which mediates all of them. State whose
	// class is co-located with all of its accessors compiles to plain
	// unmediated field opcodes; under MaxConcurrent > 1 such state
	// must not be shared mutably between invocations (pin it on a
	// remote partition or build the distribution adaptively if it
	// must be). And as with any per-object locking, invocations whose
	// methods nest accesses to multiple shared objects in conflicting
	// orders can deadlock each other — structure entrypoints to
	// acquire shared objects in a consistent order.
	MaxConcurrent int
	// Compile enables tiered execution: per-method hotness counters
	// (invocations plus taken loop back-edges) promote hot methods from
	// the interpreter to Go closures compiled from the quad IR, with
	// guarded deopt back to the interpreter at every access-mediated
	// site — so sequential results, distributed message counts,
	// replica behaviour and dedup journals are observably identical
	// with the tier on or off. Off (the default), execution is
	// byte-identical to the untiered machine.
	Compile bool
	// CompileThreshold is the hotness count that promotes a method
	// (0 = DefaultCompileThreshold). Requires Compile.
	CompileThreshold int
	// Elastic enables cluster membership on a deployment: Cluster.Join
	// admits fresh nodes into the running cluster (rewriting the
	// program for the new rank, growing the fabric and migrating
	// objects onto the new capacity) and Cluster.Drain retires members
	// gracefully, all without pausing invocations. Requires an adaptive
	// distribution (live migration is the admission mechanism) and
	// K ≥ 2. Off — the default — the wire stream is byte-identical to a
	// static deployment.
	Elastic bool
	// MaxRanks caps how many ranks the deployment can ever hold
	// (initial nodes plus joiners); it reserves the object-id namespace
	// so ids minted before a join can never collide with the joiner's.
	// 0 = DefaultMaxRanks. Requires Elastic; must be at least K.
	MaxRanks int
}

// DefaultMaxRanks is the rank-space reservation applied to elastic
// deployments when Config.MaxRanks is zero.
const DefaultMaxRanks = 64

// RunOptions is the legacy name for Config; every existing caller
// keeps compiling and behaving identically.
type RunOptions = Config

// Validate rejects incoherent option combinations. It is the one
// source of truth for the pairwise conflict rules: distribution-only
// options on a sequential configuration, the adaptation epoch without
// an adaptive distribution, replication with the optimisations
// disabled, and a virtual-clock speed table shorter than the cluster.
func (c *Config) Validate() error {
	if c.K < 0 {
		return fmt.Errorf("autodist: negative node count %d", c.K)
	}
	if c.AdaptEvery < 0 {
		return fmt.Errorf("autodist: negative adaptation epoch %d", c.AdaptEvery)
	}
	if c.MaxConcurrent < 0 {
		return fmt.Errorf("autodist: negative MaxConcurrent %d", c.MaxConcurrent)
	}
	if c.CompileThreshold < 0 {
		return fmt.Errorf("autodist: negative CompileThreshold %d", c.CompileThreshold)
	}
	if c.CompileThreshold > 0 && !c.Compile {
		return fmt.Errorf("autodist: CompileThreshold requires Compile")
	}
	if c.K <= 1 {
		switch {
		case c.Adaptive:
			return fmt.Errorf("autodist: Adaptive requires a distributed run (K ≥ 2)")
		case c.Replicate:
			return fmt.Errorf("autodist: Replicate requires a distributed run (K ≥ 2)")
		case c.Unoptimized:
			return fmt.Errorf("autodist: Unoptimized requires a distributed run (K ≥ 2)")
		case c.NoFuse:
			return fmt.Errorf("autodist: NoFuse requires a distributed run (K ≥ 2)")
		case c.TCP:
			return fmt.Errorf("autodist: TCP requires a distributed run (K ≥ 2)")
		case c.MaxConcurrent > 1:
			return fmt.Errorf("autodist: MaxConcurrent requires a distributed deployment (K ≥ 2)")
		case c.FailureRecovery:
			return fmt.Errorf("autodist: FailureRecovery requires a distributed deployment (K ≥ 2)")
		case c.Elastic:
			return fmt.Errorf("autodist: Elastic requires a distributed deployment (K ≥ 2)")
		}
	}
	if c.Elastic && !c.Adaptive {
		return fmt.Errorf("autodist: Elastic requires an adaptive distribution (Plan.RewriteAdaptive / -adaptive)")
	}
	if c.MaxRanks != 0 {
		if !c.Elastic {
			return fmt.Errorf("autodist: MaxRanks requires Elastic")
		}
		if c.MaxRanks < c.K {
			return fmt.Errorf("autodist: MaxRanks %d below node count %d", c.MaxRanks, c.K)
		}
	}
	if c.HeartbeatInterval < 0 {
		return fmt.Errorf("autodist: negative HeartbeatInterval %v", c.HeartbeatInterval)
	}
	if c.RetransmitTimeout < 0 {
		return fmt.Errorf("autodist: negative RetransmitTimeout %v", c.RetransmitTimeout)
	}
	if !c.FailureRecovery {
		if c.HeartbeatInterval != 0 || c.RetransmitTimeout != 0 {
			return fmt.Errorf("autodist: HeartbeatInterval/RetransmitTimeout require FailureRecovery")
		}
		if c.ChaosSeed != 0 || c.ChaosDrop != 0 || c.ChaosDup != 0 || c.ChaosReorder != 0 {
			return fmt.Errorf("autodist: chaos injection requires FailureRecovery")
		}
	}
	if err := (transport.ChaosRules{
		Seed: c.ChaosSeed, Drop: c.ChaosDrop, Dup: c.ChaosDup, Reorder: c.ChaosReorder,
	}).Validate(); err != nil {
		return fmt.Errorf("autodist: %w", err)
	}
	if c.TCPNoCoalesce && !c.TCP {
		return fmt.Errorf("autodist: TCPNoCoalesce requires TCP")
	}
	if c.TCPCompress && !c.TCP {
		return fmt.Errorf("autodist: TCPCompress requires TCP")
	}
	if c.TCPCompress && c.TCPNoCoalesce {
		return fmt.Errorf("autodist: TCPCompress needs the write combiner; drop TCPNoCoalesce")
	}
	if c.AdaptEvery > 0 && !c.Adaptive {
		return fmt.Errorf("autodist: AdaptEvery requires an adaptive distribution (Plan.RewriteAdaptive / -adaptive)")
	}
	if c.Replicate && c.Unoptimized {
		return fmt.Errorf("autodist: Unoptimized disables the optimisations Replicate enables; pick one")
	}
	if c.K > 1 && len(c.CPUSpeeds) > 0 && len(c.CPUSpeeds) < c.K {
		return fmt.Errorf("autodist: CPUSpeeds has %d entries for %d nodes", len(c.CPUSpeeds), c.K)
	}
	return nil
}

// DefaultAdaptEvery is the adaptation epoch applied to adaptive
// distributions when RunOptions.AdaptEvery is zero.
const DefaultAdaptEvery = 32

// DefaultCompileThreshold is the hotness count (invocations plus taken
// loop back-edges) that promotes a method to the compiled tier when
// Config.CompileThreshold is zero.
const DefaultCompileThreshold = 64

// NetModel re-exports the runtime's communication cost model.
type NetModel = runtime.NetModel

const defaultMaxSteps = 2_000_000_000

// RunResult reports an execution's outcome.
type RunResult struct {
	// Output is the program's printed output when Out was nil. For
	// resident deployments the capture is bounded; OutputDropped
	// counts bytes discarded past the bound (always 0 for batch and
	// sequential runs — pass Config.Out to stream full output).
	Output        string
	OutputDropped int64
	// Wall is the host-measured execution time.
	Wall time.Duration
	// SimSeconds is the virtual-clock completion time (0 without
	// CPUSpeeds).
	SimSeconds float64
	// Messages and Bytes count distribution traffic (0 sequentially).
	Messages int64
	// BytesSent counts payload bytes moved between nodes.
	BytesSent int64
	// CacheHits counts remote field reads served from the proxy-side
	// cache (zero messages each).
	CacheHits int64
	// AsyncCalls counts void invocations executed as fire-and-forget
	// asynchronous messages; BatchFrames counts the transport frames
	// that carried them after aggregation.
	AsyncCalls  int64
	BatchFrames int64
	// Migrations counts live object migrations executed by the
	// adaptive-repartitioning subsystem; Forwards counts stale
	// requests relayed to an object's new home during handoff. Both
	// are zero on static (non-adaptive) runs.
	Migrations int64
	Forwards   int64
	// ReplicaHits counts reads served from a local replica (zero
	// messages each); ReplicaFetches counts REPLICATE exchanges that
	// delivered a snapshot; Invalidations counts INVALIDATE frames
	// writes pushed to replica holders. All are zero unless the run
	// used RunOptions.Replicate on a replicated distribution.
	ReplicaHits    int64
	ReplicaFetches int64
	Invalidations  int64
	// RetainedHits counts cache and replica hits served from state
	// learned during an earlier Cluster.Invoke call — the
	// cross-invocation retention of a resident deployment. Always zero
	// on one-shot runs.
	RetainedHits int64
	// FusedBatches counts DEPSEQ frames sent (one per destination
	// segment of an executed fused access run); FusedAccesses counts
	// the individual accesses those frames carried. Their difference
	// is the number of synchronous round trips fusion saved. Both are
	// zero when the deployment ran with Config.NoFuse.
	FusedBatches  int64
	FusedAccesses int64
	// Retransmits counts frames the reliability layer resent after an
	// ack timeout; Recoveries counts frames it healed on the receive
	// side (retransmitted-then-delivered plus duplicates suppressed).
	// PromotedReplicas counts replica shadows promoted to authoritative
	// owner after a node death; RedrivenInvocations counts entrypoint
	// invocations re-executed against the promoted copies. All are zero
	// unless the deployment used Config.FailureRecovery.
	Retransmits         int64
	Recoveries          int64
	PromotedReplicas    int64
	RedrivenInvocations int64
	// CompiledMethods counts compilation events, TierUps counts
	// interpreter→compiled promotions (hot methods crossing the
	// threshold), CompiledEntries counts compiled-frame entries (how
	// many times compiled code ran — this grows with the workload, the
	// other two with the number of hot methods), and Deopts counts
	// mid-method fallbacks to the interpreter (at access-mediated
	// sites and other guarded points). All are zero unless the run
	// used Config.Compile.
	CompiledMethods int64
	TierUps         int64
	CompiledEntries int64
	Deopts          int64
	// Joins counts nodes admitted into the cluster after deployment,
	// Drains counts members retired gracefully, and StaleViews counts
	// coordination frames refused for carrying an outdated membership
	// view. All are zero unless the deployment used Config.Elastic.
	Joins      int64
	Drains     int64
	StaleViews int64
}

// fillStats copies the runtime's protocol counters into the result.
func (r *RunResult) fillStats(s runtime.NodeStats) {
	r.Messages = s.MessagesSent
	r.BytesSent = s.BytesSent
	r.CacheHits = s.CacheHits
	r.AsyncCalls = s.AsyncCalls
	r.BatchFrames = s.BatchFrames
	r.Migrations = s.Migrations
	r.Forwards = s.Forwards
	r.ReplicaHits = s.ReplicaHits
	r.ReplicaFetches = s.ReplicaFetches
	r.Invalidations = s.Invalidations
	r.RetainedHits = s.RetainedHits
	r.FusedBatches = s.FusedBatches
	r.FusedAccesses = s.FusedAccesses
	r.Retransmits = s.Retransmits
	r.Recoveries = s.Recoveries
	r.PromotedReplicas = s.PromotedReplicas
	r.RedrivenInvocations = s.RedrivenInvocations
	r.CompiledMethods = s.CompiledMethods
	r.TierUps = s.TierUps
	r.CompiledEntries = s.CompiledEntries
	r.Deopts = s.Deopts
	r.Joins = s.Joins
	r.Drains = s.Drains
	r.StaleViews = s.StaleViews
}

// newVM is the shared VM-setup path of Program.Run and
// Program.Profile (Deploy builds its per-node VMs through
// runtime.NewCluster, but applies the same out-writer capture and
// MaxSteps default): it clones the bytecode into a fresh interpreter,
// wires the out-writer (capturing into the returned builder when
// cfg.Out is nil), applies the MaxSteps safety default, and installs
// the virtual clock when CPU speeds are configured.
func (p *Program) newVM(cfg Config) (*vm.VM, *strings.Builder, error) {
	if cfg.K > 1 {
		return nil, nil, fmt.Errorf("autodist: sequential execution cannot honour K = %d (use Distribution.Deploy or Run)", cfg.K)
	}
	if err := cfg.Validate(); err != nil {
		return nil, nil, err
	}
	machine, err := vm.New(p.Bytecode.Clone())
	if err != nil {
		return nil, nil, err
	}
	sb := &strings.Builder{}
	if cfg.Out != nil {
		machine.Out = cfg.Out
	} else {
		machine.Out = sb
	}
	machine.MaxSteps = cfg.MaxSteps
	if machine.MaxSteps == 0 {
		machine.MaxSteps = defaultMaxSteps
	}
	if len(cfg.CPUSpeeds) > 0 {
		machine.Time = &vm.TimeModel{CyclesPerSecond: cfg.CPUSpeeds[0]}
	}
	if cfg.Compile {
		machine.EnableJIT(compileThreshold(cfg), jit.Backend(machine))
	}
	return machine, sb, nil
}

// compileThreshold resolves Config.CompileThreshold's zero default.
func compileThreshold(cfg Config) int {
	if cfg.CompileThreshold > 0 {
		return cfg.CompileThreshold
	}
	return DefaultCompileThreshold
}

// Run executes the program sequentially on one VM.
func (p *Program) Run(opts RunOptions) (*RunResult, error) {
	machine, sb, err := p.newVM(opts)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	if err := machine.RunMain(); err != nil {
		return nil, err
	}
	r := &RunResult{
		Output:     sb.String(),
		Wall:       time.Since(start),
		SimSeconds: machine.SimSeconds(),
	}
	cm, tu, en, d := machine.JITStats()
	r.CompiledMethods, r.TierUps, r.CompiledEntries, r.Deopts =
		int64(cm), int64(tu), int64(en), int64(d)
	return r, nil
}

// Profile runs the program under one profiler metric and returns the
// profiler alongside the run result.
func (p *Program) Profile(metric ProfileMetric, opts RunOptions) (*profiler.Profiler, *RunResult, error) {
	machine, sb, err := p.newVM(opts)
	if err != nil {
		return nil, nil, err
	}
	prof := profiler.Attach(machine, metric)
	start := time.Now()
	if err := machine.RunMain(); err != nil {
		return nil, nil, err
	}
	return prof, &RunResult{Output: sb.String(), Wall: time.Since(start), SimSeconds: machine.SimSeconds()}, nil
}

// ProfileMetric re-exports the profiler's metric enum.
type ProfileMetric = profiler.Metric

// Profiler metrics (paper §6), plus the field-access metric whose
// per-class read/write counts sharpen the replication classification
// (analysis.ReplicaIntensity.ApplyProfile).
const (
	ProfileNone             = profiler.None
	ProfileMethodDuration   = profiler.MethodDuration
	ProfileMethodFrequency  = profiler.MethodFrequency
	ProfileHotMethods       = profiler.HotMethods
	ProfileHotPaths         = profiler.HotPaths
	ProfileMemoryAllocation = profiler.MemoryAllocation
	ProfileDynamicCallGraph = profiler.DynamicCallGraph
	ProfileFieldAccess      = profiler.FieldAccess
)

// Analysis is the dependence-analysis stage output.
type Analysis struct {
	Program *Program
	Result  *analysis.Result
}

// Analyze builds the call graph, class relation graph and object
// dependence graph (paper §2).
func (p *Program) Analyze() (*Analysis, error) {
	res, err := analysis.Analyze(p.Bytecode)
	if err != nil {
		return nil, err
	}
	return &Analysis{Program: p, Result: res}, nil
}

// WriteCRG emits the class relation graph in VCG format (Figure 3).
func (a *Analysis) WriteCRG(w io.Writer) error { return a.Result.CRG.Graph.VCG(w) }

// WriteODG emits the object dependence graph in VCG format (Figure 4);
// partition annotations appear once Partition has run.
func (a *Analysis) WriteODG(w io.Writer) error { return a.Result.ODG.Graph.VCG(w) }

// PartitionOptions re-exports the partitioner's options.
type PartitionOptions = partition.Options

// Partition methods.
const (
	PartitionMultilevel = partition.Multilevel
	PartitionFlatKL     = partition.FlatKL
	PartitionRoundRobin = partition.RoundRobin
	PartitionRandom     = partition.Random
)

// Plan is the partitioning stage output: every object assigned a
// virtual processor.
type Plan struct {
	Analysis  *Analysis
	K         int
	Partition *partition.Result
}

// Partition splits the ODG into k parts (paper §3). opts.K is
// overridden by k.
func (a *Analysis) Partition(k int, opts PartitionOptions) (*Plan, error) {
	opts.K = k
	res, err := partition.Partition(a.Result.ODG.Graph, opts)
	if err != nil {
		return nil, err
	}
	return &Plan{Analysis: a, K: k, Partition: res}, nil
}

// Distribution is the communication-generation stage output: one
// rewritten program per node.
type Distribution struct {
	Plan   *Plan
	Result *rewrite.Result
}

// Rewrite generates per-node programs with communication calls
// (paper §4.2, Figures 8–9). The partition is a contract: objects stay
// where the plan put them for the whole run.
func (pl *Plan) Rewrite() (*Distribution, error) {
	res, err := rewrite.Rewrite(pl.Analysis.Program.Bytecode, pl.Analysis.Result, pl.K)
	if err != nil {
		return nil, err
	}
	return &Distribution{Plan: pl, Result: res}, nil
}

// RewriteAdaptive generates per-node programs for adaptive
// repartitioning: the partition is only the initial placement, every
// instance access is mediated by the runtime's dynamic ownership map,
// and Run starts the coordinator that migrates objects towards their
// observed communication affinity.
func (pl *Plan) RewriteAdaptive() (*Distribution, error) {
	return pl.RewriteWith(RewriteOptions{Adaptive: true})
}

// RewriteOptions selects the rewriting mode: the zero value is the
// static plan-as-contract rewrite, Adaptive enables live migration,
// Replicate stamps read-replication access kinds for the analysis
// pass's read-mostly candidate classes. The two compose.
type RewriteOptions = rewrite.Options

// RewriteWith generates per-node programs under the given mode
// options (see RewriteOptions). Run it with RunOptions.Replicate to
// enable the replication protocol on a replicated distribution.
func (pl *Plan) RewriteWith(opts RewriteOptions) (*Distribution, error) {
	res, err := rewrite.RewriteWith(pl.Analysis.Program.Bytecode, pl.Analysis.Result, pl.K, opts)
	if err != nil {
		return nil, err
	}
	return &Distribution{Plan: pl, Result: res}, nil
}

// Run executes the distributed program as a one-shot batch (paper §5):
// one node per partition, ExecutionStarter on node 0. It is a thin
// wrapper over the deployment lifecycle — Deploy, Invoke("main"),
// Shutdown — preserved so batch callers need not manage a Cluster.
func (d *Distribution) Run(opts RunOptions) (*RunResult, error) {
	cluster, err := d.Deploy(opts)
	if err != nil {
		return nil, err
	}
	if _, err := cluster.Invoke("main"); err != nil {
		cluster.Kill()
		return nil, err
	}
	if err := cluster.Shutdown(context.Background()); err != nil {
		return nil, err
	}
	return cluster.Stats(), nil
}

// Disassemble renders a method's bytecode (empty string if missing).
func (p *Program) Disassemble(class, method string) string {
	cf := p.Bytecode.Class(class)
	if cf == nil {
		return ""
	}
	m := cf.MethodByName(method)
	if m == nil {
		return ""
	}
	return bytecode.DisasmMethod(cf, m)
}

// Quads renders a method's quad IR in the paper's Figure 5 format.
func (p *Program) Quads(class, method string) (string, error) {
	cf := p.Bytecode.Class(class)
	if cf == nil {
		return "", fmt.Errorf("autodist: class %s not found", class)
	}
	m := cf.MethodByName(method)
	if m == nil {
		return "", fmt.Errorf("autodist: method %s.%s not found", class, method)
	}
	f, err := quad.Translate(cf, m)
	if err != nil {
		return "", err
	}
	return f.Format(), nil
}

// GenerateAssembly emits native assembly for a method on the named
// target ("x86" or "strongarm", Figure 7).
func (p *Program) GenerateAssembly(class, method, target string) (string, error) {
	cf := p.Bytecode.Class(class)
	if cf == nil {
		return "", fmt.Errorf("autodist: class %s not found", class)
	}
	m := cf.MethodByName(method)
	if m == nil {
		return "", fmt.Errorf("autodist: method %s.%s not found", class, method)
	}
	f, err := quad.Translate(cf, m)
	if err != nil {
		return "", err
	}
	return codegen.Generate(f, target)
}

// Targets lists the code-generation targets.
func Targets() []string { return codegen.Targets() }
