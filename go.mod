module autodist

go 1.24
