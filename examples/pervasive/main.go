// Pervasive: the paper's motivating resource-constrained scenario
// (§1.1): a program too heavy for a small device is split so that the
// memory-hungry objects move to a server while the interactive front
// stays on the device. This exercises the multi-constraint weights
// (memory/CPU/battery) that distinguish the partitioner from a pure
// edge-cut minimiser.
package main

import (
	"fmt"
	"log"

	"autodist"
)

const deviceApp = `
class SensorLog {
	int[] samples;
	int count;
	SensorLog(int capacity) {
		this.samples = new int[capacity];
	}
	void record(int v) {
		this.samples[this.count % this.samples.length] = v;
		this.count++;
	}
	int smooth(int window) {
		int s = 0;
		for (int i = 0; i < window; i++) {
			s += this.samples[i % this.samples.length];
		}
		return s / window;
	}
}
class Archive {
	Vector entries;
	Archive() { this.entries = new Vector(); }
	void store(SensorLog l) { this.entries.add(l); }
	int size() { return this.entries.size(); }
}
class Device {
	static void main() {
		Archive archive = new Archive();
		for (int run = 0; run < 4; run++) {
			SensorLog log = new SensorLog(256);
			for (int t = 0; t < 500; t++) {
				log.record(t * 7 % 100);
			}
			System.println("run " + run + " avg=" + log.smooth(64));
			archive.store(log);
		}
		System.println("archived " + archive.size() + " logs");
	}
}
`

func main() {
	prog, err := autodist.CompileString(deviceApp)
	if err != nil {
		log.Fatal(err)
	}
	an, err := prog.Analyze()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("resource model (vector vertex weights):")
	for _, v := range an.Result.ODG.Graph.Vertices() {
		fmt.Printf("  %-14s memory=%-5d cpu=%-5d battery=%d\n",
			v.Label, v.Weights[0], v.Weights[1], v.Weights[2])
	}

	// Tight balance on all three dimensions: the device cannot hold
	// everything, so the partitioner must offload real weight.
	plan, err := an.Partition(2, autodist.PartitionOptions{Seed: 1, Epsilon: 0.3})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nplacement (node 0 = device, node 1 = server):")
	for _, v := range an.Result.ODG.Graph.Vertices() {
		where := "device"
		if v.Part == 1 {
			where = "server"
		}
		fmt.Printf("  %-14s -> %s\n", v.Label, where)
	}
	fmt.Printf("per-node resource usage: %v\n", plan.Partition.PartWeights)

	dist, err := plan.Rewrite()
	if err != nil {
		log.Fatal(err)
	}
	res, err := dist.Run(autodist.RunOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ndistributed run output:\n%s", res.Output)
	fmt.Printf("messages: %d (%d bytes)\n", res.Messages, res.BytesSent)

	seq, err := prog.Run(autodist.RunOptions{})
	if err != nil {
		log.Fatal(err)
	}
	if seq.Output == res.Output {
		fmt.Println("OK: offloaded execution equals on-device execution")
	} else {
		log.Fatal("output mismatch")
	}

	// Contrast with a placement that ignores the dependence structure:
	// scattering objects round-robin forces chatter over the link.
	an2, err := prog.Analyze()
	if err != nil {
		log.Fatal(err)
	}
	naive, err := an2.Partition(2, autodist.PartitionOptions{Method: autodist.PartitionRoundRobin})
	if err != nil {
		log.Fatal(err)
	}
	nd, err := naive.Rewrite()
	if err != nil {
		log.Fatal(err)
	}
	nres, err := nd.Run(autodist.RunOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("naive round-robin placement needs %d messages (%d bytes) for the same program\n",
		nres.Messages, nres.BytesSent)
}
