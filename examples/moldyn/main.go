// MolDyn: a scientific workload (§1.1's "data intensive applications")
// on the simulated heterogeneous testbed. The example sweeps the
// partitioning methods, reproducing in miniature the paper's §7.2
// observation that distribution quality decides whether the second node
// helps or hurts.
package main

import (
	"fmt"
	"log"

	"autodist"
	"autodist/internal/bench"
	"autodist/internal/experiments"
)

func main() {
	p, err := bench.Get("moldyn")
	if err != nil {
		log.Fatal(err)
	}
	prog, err := autodist.CompileString(p.Source)
	if err != nil {
		log.Fatal(err)
	}

	// Centralized baseline: the whole simulation on the 800 MHz node.
	seq, err := prog.Run(autodist.RunOptions{
		CPUSpeeds: []float64{experiments.ComputeNodeHz},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("centralized (800 MHz): %.6fs simulated\n", seq.SimSeconds)
	fmt.Print(seq.Output)

	net := &autodist.NetModel{
		LatencySec:  experiments.EthernetLatencySec,
		BytesPerSec: experiments.EthernetBytesPerSec,
	}
	for _, method := range []struct {
		name string
		m    autodist.PartitionOptions
	}{
		{"multilevel (Metis-style)", autodist.PartitionOptions{Method: autodist.PartitionMultilevel, Seed: 1, Epsilon: 0.6}},
		{"round-robin (naive)", autodist.PartitionOptions{Method: autodist.PartitionRoundRobin}},
	} {
		an, err := prog.Analyze()
		if err != nil {
			log.Fatal(err)
		}
		plan, err := an.Partition(2, method.m)
		if err != nil {
			log.Fatal(err)
		}
		dist, err := plan.Rewrite()
		if err != nil {
			log.Fatal(err)
		}
		res, err := dist.Run(autodist.RunOptions{
			CPUSpeeds: []float64{experiments.ServiceNodeHz, experiments.ComputeNodeHz},
			Net:       net,
		})
		if err != nil {
			log.Fatal(err)
		}
		if res.Output != seq.Output {
			log.Fatalf("%s: output mismatch!", method.name)
		}
		fmt.Printf("%-26s %.6fs simulated, %4d messages, relative %.1f%%\n",
			method.name, res.SimSeconds, res.Messages, seq.SimSeconds/res.SimSeconds*100)
	}
}
