// Phaseshift: the adaptive-repartitioning showcase. The workload's hot
// object set moves mid-run — phase one hammers the a-group stages,
// phase two the b-group — so a static partition necessarily strands one
// phase's hot objects behind the network. The example runs the same
// program three ways: sequentially, distributed with the plan as a
// contract (-adaptive=off behaviour), and distributed with adaptive
// repartitioning, where the runtime observes per-object traffic,
// re-partitions the affinity graph and live-migrates objects next to
// their callers.
package main

import (
	"fmt"
	"log"
	"os"

	"autodist"
	"autodist/internal/experiments"
)

func main() {
	prog, err := autodist.CompileString(experiments.PhaseShiftSource)
	if err != nil {
		log.Fatal(err)
	}
	seq, err := prog.Run(autodist.RunOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sequential output:\n%s\n", seq.Output)

	distribute := func(adaptive bool) *autodist.RunResult {
		an, err := prog.Analyze()
		if err != nil {
			log.Fatal(err)
		}
		plan, err := an.Partition(2, autodist.PartitionOptions{Seed: 1, Epsilon: 0.6})
		if err != nil {
			log.Fatal(err)
		}
		var dist *autodist.Distribution
		if adaptive {
			dist, err = plan.RewriteAdaptive()
		} else {
			dist, err = plan.Rewrite()
		}
		if err != nil {
			log.Fatal(err)
		}
		res, err := dist.Run(autodist.RunOptions{})
		if err != nil {
			log.Fatal(err)
		}
		if res.Output != seq.Output {
			fmt.Println("MISMATCH: distributed output differs from sequential!")
			os.Exit(1)
		}
		return res
	}

	static := distribute(false)
	adaptive := distribute(true)
	fmt.Printf("static plan:      %5d messages, %6d payload bytes\n", static.Messages, static.BytesSent)
	fmt.Printf("adaptive:         %5d messages, %6d payload bytes, %d migrations, %d forwards\n",
		adaptive.Messages, adaptive.BytesSent, adaptive.Migrations, adaptive.Forwards)
	if adaptive.Messages < static.Messages {
		fmt.Printf("OK: live migration cut messages by %.0f%%\n",
			float64(static.Messages-adaptive.Messages)/float64(static.Messages)*100)
	} else {
		fmt.Println("adaptive run did not reduce messages")
		os.Exit(1)
	}
}
