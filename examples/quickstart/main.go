// Quickstart: the complete pipeline on the paper's Bank example (§2.1):
// compile MJ → analyze dependences → partition 2-ways → rewrite →
// execute sequentially and distributed, comparing outputs.
package main

import (
	"fmt"
	"log"
	"os"

	"autodist"
	"autodist/internal/experiments"
)

func main() {
	prog, err := autodist.CompileString(experiments.BankExampleSource)
	if err != nil {
		log.Fatal(err)
	}

	// 1. Sequential execution (the monolithic program).
	seq, err := prog.Run(autodist.RunOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sequential output: %s", seq.Output)

	// 2. Dependence analysis: CRG + ODG (Figures 3-4).
	an, err := prog.Analyze()
	if err != nil {
		log.Fatal(err)
	}

	// 3. Partition the object dependence graph two ways (§3).
	plan, err := an.Partition(2, autodist.PartitionOptions{Seed: 1, Epsilon: 0.6})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("partition: edgecut=%d, imbalance=%.2f\n",
		plan.Partition.EdgeCut, plan.Partition.Imbalance)

	// Dump the annotated ODG for aiSee/VCG viewers.
	f, err := os.Create("bank-odg.vcg")
	if err != nil {
		log.Fatal(err)
	}
	if err := an.WriteODG(f); err != nil {
		log.Fatal(err)
	}
	_ = f.Close()
	fmt.Println("wrote bank-odg.vcg (Figure 4)")

	// 4. Communication generation (§4.2) and distributed run (§5).
	dist, err := plan.Rewrite()
	if err != nil {
		log.Fatal(err)
	}
	res, err := dist.Run(autodist.RunOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("distributed output: %s", res.Output)
	fmt.Printf("messages exchanged: %d (%d payload bytes)\n", res.Messages, res.BytesSent)

	if res.Output == seq.Output {
		fmt.Println("OK: distributed execution matches the monolithic program")
	} else {
		fmt.Println("MISMATCH: outputs differ!")
		os.Exit(1)
	}
}
