// Bank: the paper's running example executed over real TCP sockets with
// the NEW/DEPENDENCE message protocol visible. This is the Figure 10
// configuration: an MPI service and Message Exchange service per node,
// the ExecutionStarter on node 0, and DependentObject proxies carrying
// remote accesses.
package main

import (
	"fmt"
	"log"
	"os"

	"autodist"
	"autodist/internal/experiments"
)

func main() {
	prog, err := autodist.CompileString(experiments.BankExampleSource)
	if err != nil {
		log.Fatal(err)
	}
	an, err := prog.Analyze()
	if err != nil {
		log.Fatal(err)
	}

	// Show the dependence structure the analysis discovered.
	fmt.Println("object dependence graph:")
	for _, v := range an.Result.ODG.Graph.Vertices() {
		fmt.Printf("  %-12s mem=%-4d cpu=%-4d battery=%d\n",
			v.Label, v.Weights[0], v.Weights[1], v.Weights[2])
	}

	plan, err := an.Partition(2, autodist.PartitionOptions{Seed: 1, Epsilon: 0.6})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nplacement (node 0 runs the ExecutionStarter):")
	for _, v := range an.Result.ODG.Graph.Vertices() {
		fmt.Printf("  %-12s -> node %d\n", v.Label, v.Part)
	}

	dist, err := plan.Rewrite()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nrunning over TCP loopback...")
	res, err := dist.Run(autodist.RunOptions{Out: os.Stdout, TCP: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%d messages exchanged, %d payload bytes\n", res.Messages, res.BytesSent)
}
