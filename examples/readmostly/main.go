// Readmostly: the read-replication showcase. A shared Directory object
// lives on node 0 while worker objects on two reader nodes hammer it
// with lookups, with one write per phase. Under the static plan every
// lookup is a remote round-trip to the directory's home; under
// -replicate each reader node installs a replica once per phase and
// serves the lookups locally, paying only the write's
// invalidate-on-write traffic. The run fails (exit 1) unless
// replication cuts messages by at least half while producing
// bit-identical output.
package main

import (
	"fmt"
	"os"

	"autodist/internal/experiments"
)

func main() {
	static, replicated, err := experiments.RunReadMostlyAB()
	if err != nil {
		fmt.Fprintln(os.Stderr, "readmostly:", err)
		os.Exit(1)
	}
	fmt.Printf("static plan:  %5d messages, %6d payload bytes\n", static.MessagesSent, static.BytesSent)
	fmt.Printf("replicated:   %5d messages, %6d payload bytes, %d replica hits, %d fetches, %d invalidations\n",
		replicated.MessagesSent, replicated.BytesSent,
		replicated.ReplicaHits, replicated.ReplicaFetches, replicated.Invalidations)
	if replicated.MessagesSent*2 <= static.MessagesSent {
		fmt.Printf("OK: read-replication cut messages by %.0f%%\n",
			float64(static.MessagesSent-replicated.MessagesSent)/float64(static.MessagesSent)*100)
	} else {
		fmt.Println("replication did not halve the message count")
		os.Exit(1)
	}
}
