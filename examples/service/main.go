// Service: the deployment-lifecycle showcase. Instead of one batch
// Run, the distribution is deployed as a resident cluster whose nodes
// stay up between requests: main() is invoked once to provision the
// shared Table (pinned on node 1, away from the ExecutionStarter),
// then a request loop invokes the other static entrypoints of the
// main class — sequentially and from concurrent goroutines — against
// the same live cluster. The run demonstrates (and self-checks, exit 1
// on failure) that
//
//   - a resident cluster serves many invocations of several distinct
//     entrypoints with correct results;
//   - coherence state persists across invocations: the second
//     identical read costs strictly fewer messages than the first,
//     because the write-once cache filled serving request N still
//     holds when request N+1 arrives (the RetainedHits counter);
//   - Shutdown drains outstanding asynchronous work through the final
//     barrier before the nodes stop.
package main

import (
	"context"
	_ "embed"
	"fmt"
	"os"
	"sync"

	"autodist"
)

//go:embed service.mj
var serviceSource string

func fail(err error) {
	fmt.Fprintln(os.Stderr, "service:", err)
	os.Exit(1)
}

func main() {
	prog, err := autodist.CompileString(serviceSource)
	if err != nil {
		fail(err)
	}
	an, err := prog.Analyze()
	if err != nil {
		fail(err)
	}
	plan, err := an.Partition(2, autodist.PartitionOptions{Seed: 1, Epsilon: 0.6})
	if err != nil {
		fail(err)
	}
	// Pin the shared Table away from the starter so every request
	// crosses the wire — the worst case a resident deployment has to
	// amortise.
	for _, v := range an.Result.ODG.Graph.Vertices() {
		v.Part = 0
	}
	for _, s := range an.Result.ODG.Sites {
		if s.Allocated == "Table" {
			an.Result.ODG.Graph.Vertex(s.Node).Part = 1
		}
	}
	dist, err := plan.Rewrite()
	if err != nil {
		fail(err)
	}

	cluster, err := dist.Deploy(autodist.Config{Out: os.Stdout})
	if err != nil {
		fail(err)
	}
	fmt.Printf("entrypoints: %v\n", cluster.Entrypoints())

	// Provision: main() runs exactly once, like a batch run's start.
	if _, err := cluster.Invoke("main"); err != nil {
		fail(err)
	}

	// Sequential request phase: three distinct entrypoints.
	check := func(entry string, want int64, args ...autodist.Value) {
		res, err := cluster.Invoke(entry, args...)
		if err != nil {
			fail(err)
		}
		if res.Value != want {
			fail(fmt.Errorf("%s(%v) = %v, want %d", entry, args, res.Value, want))
		}
	}
	check("sum", 100)
	check("get", 10, 0)
	check("put", 25, 1, 25)
	check("sum", 105)
	for slot := int64(0); slot < 4; slot++ {
		check("put", 100+slot, slot, 100+slot)
	}
	check("sum", 406)

	// Cross-invocation retention: the same read twice. The second
	// invocation is served from cache state learned by the first.
	first, err := cluster.Invoke("label")
	if err != nil {
		fail(err)
	}
	second, err := cluster.Invoke("label")
	if err != nil {
		fail(err)
	}
	if second.Value != int64(7) || first.Value != int64(7) {
		fail(fmt.Errorf("label() = %v then %v, want 7", first.Value, second.Value))
	}
	fmt.Printf("label(): first invocation %d msgs, second %d msgs (%d hits retained across invocations)\n",
		first.Messages, second.Messages, second.RetainedHits)
	if second.Messages >= first.Messages {
		fail(fmt.Errorf("retention failed: second label() cost %d msgs, first cost %d",
			second.Messages, first.Messages))
	}

	// Concurrent request phase: distinct slots written from distinct
	// goroutines, then read back.
	var wg sync.WaitGroup
	errs := make(chan error, 4)
	for slot := int64(0); slot < 4; slot++ {
		wg.Add(1)
		go func(slot int64) {
			defer wg.Done()
			res, err := cluster.Invoke("put", slot, 1000+slot)
			if err != nil {
				errs <- err
				return
			}
			if res.Value != 1000+slot {
				errs <- fmt.Errorf("concurrent put(%d) = %v, want %d", slot, res.Value, 1000+slot)
			}
		}(slot)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		fail(err)
	}
	check("sum", 4006)

	stats := cluster.Stats()
	fmt.Printf("served %d invocations: %d messages, %d payload bytes, %d cache hits (%d retained)\n",
		cluster.Invocations(), stats.Messages, stats.BytesSent, stats.CacheHits, stats.RetainedHits)

	if err := cluster.Shutdown(context.Background()); err != nil {
		fail(err)
	}
	fmt.Println("OK: resident cluster served sequential and concurrent invocations correctly")
}
