// Service: the deployment-lifecycle showcase. Instead of one batch
// Run, the distribution is deployed as a resident cluster whose nodes
// stay up between requests: main() is invoked once to provision the
// shared Table (pinned on node 1, away from the ExecutionStarter),
// then a request loop invokes the other static entrypoints of the
// main class — sequentially and from concurrent goroutines — against
// the same live cluster. The run demonstrates (and self-checks, exit 1
// on failure) that
//
//   - a resident cluster serves many invocations of several distinct
//     entrypoints with correct results;
//   - coherence state persists across invocations: the second
//     identical read costs strictly fewer messages than the first,
//     because the write-once cache filled serving request N still
//     holds when request N+1 arrives (the RetainedHits counter);
//   - Shutdown drains outstanding asynchronous work through the final
//     barrier before the nodes stop;
//   - concurrent clients: the cluster is deployed with
//     Config.MaxConcurrent = 8, so invocations from concurrent
//     goroutines run as parallel logical threads across the cluster —
//     and a phase of M client goroutines × K invocations each
//     self-checks that every concurrent result equals the one the
//     same request stream produced sequentially.
package main

import (
	"context"
	_ "embed"
	"fmt"
	"os"
	"sync"

	"autodist"
)

//go:embed service.mj
var serviceSource string

func fail(err error) {
	fmt.Fprintln(os.Stderr, "service:", err)
	os.Exit(1)
}

func main() {
	prog, err := autodist.CompileString(serviceSource)
	if err != nil {
		fail(err)
	}
	an, err := prog.Analyze()
	if err != nil {
		fail(err)
	}
	plan, err := an.Partition(2, autodist.PartitionOptions{Seed: 1, Epsilon: 0.6})
	if err != nil {
		fail(err)
	}
	// Pin the shared Table away from the starter so every request
	// crosses the wire — the worst case a resident deployment has to
	// amortise.
	for _, v := range an.Result.ODG.Graph.Vertices() {
		v.Part = 0
	}
	for _, s := range an.Result.ODG.Sites {
		if s.Allocated == "Table" {
			an.Result.ODG.Graph.Vertex(s.Node).Part = 1
		}
	}
	dist, err := plan.Rewrite()
	if err != nil {
		fail(err)
	}

	// MaxConcurrent 8: up to eight invocations run as concurrent
	// logical threads. The sequential phases below are unaffected
	// (one caller at a time), the concurrent phases genuinely overlap.
	cluster, err := dist.Deploy(autodist.Config{Out: os.Stdout, MaxConcurrent: 8})
	if err != nil {
		fail(err)
	}
	fmt.Printf("entrypoints: %v\n", cluster.Entrypoints())

	// Provision: main() runs exactly once, like a batch run's start.
	if _, err := cluster.Invoke("main"); err != nil {
		fail(err)
	}

	// Sequential request phase: three distinct entrypoints.
	check := func(entry string, want int64, args ...autodist.Value) {
		res, err := cluster.Invoke(entry, args...)
		if err != nil {
			fail(err)
		}
		if res.Value != want {
			fail(fmt.Errorf("%s(%v) = %v, want %d", entry, args, res.Value, want))
		}
	}
	check("sum", 100)
	check("get", 10, 0)
	check("put", 25, 1, 25)
	check("sum", 105)
	for slot := int64(0); slot < 4; slot++ {
		check("put", 100+slot, slot, 100+slot)
	}
	check("sum", 406)

	// Cross-invocation retention: the same read twice. The second
	// invocation is served from cache state learned by the first.
	first, err := cluster.Invoke("label")
	if err != nil {
		fail(err)
	}
	second, err := cluster.Invoke("label")
	if err != nil {
		fail(err)
	}
	if second.Value != int64(7) || first.Value != int64(7) {
		fail(fmt.Errorf("label() = %v then %v, want 7", first.Value, second.Value))
	}
	fmt.Printf("label(): first invocation %d msgs, second %d msgs (%d hits retained across invocations)\n",
		first.Messages, second.Messages, second.RetainedHits)
	if second.Messages >= first.Messages {
		fail(fmt.Errorf("retention failed: second label() cost %d msgs, first cost %d",
			second.Messages, first.Messages))
	}

	// Concurrent request phase: distinct slots written from distinct
	// goroutines, then read back.
	var wg sync.WaitGroup
	errs := make(chan error, 4)
	for slot := int64(0); slot < 4; slot++ {
		wg.Add(1)
		go func(slot int64) {
			defer wg.Done()
			res, err := cluster.Invoke("put", slot, 1000+slot)
			if err != nil {
				errs <- err
				return
			}
			if res.Value != 1000+slot {
				errs <- fmt.Errorf("concurrent put(%d) = %v, want %d", slot, res.Value, 1000+slot)
			}
		}(slot)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		fail(err)
	}
	check("sum", 4006)

	// Concurrent-clients phase: M client goroutines × K invocations
	// each — four writers with disjoint slots, two compute/read
	// clients — first executed sequentially (recording every result),
	// then again from concurrent goroutines. Slot-disjoint writers and
	// input-determined reads make each client's stream deterministic,
	// so the concurrent results must match the sequential ones
	// entry-for-entry.
	const clients, perClient = 6, 8
	ops := func(client int, i int) (entry string, args []autodist.Value) {
		if client < 4 {
			return "put", []autodist.Value{int64(client), int64(2000 + 10*client + i)}
		}
		if client == 4 {
			return "work", []autodist.Value{int64(10 * (i + 1))}
		}
		return "label", nil
	}
	runStream := func(client int) ([]autodist.Value, error) {
		out := make([]autodist.Value, perClient)
		for i := 0; i < perClient; i++ {
			entry, args := ops(client, i)
			res, err := cluster.Invoke(entry, args...)
			if err != nil {
				return nil, err
			}
			out[i] = res.Value
		}
		return out, nil
	}
	sequential := make([][]autodist.Value, clients)
	for cl := 0; cl < clients; cl++ {
		seq, err := runStream(cl)
		if err != nil {
			fail(err)
		}
		sequential[cl] = seq
	}
	concurrent := make([][]autodist.Value, clients)
	clientErrs := make(chan error, clients)
	var cwg sync.WaitGroup
	for cl := 0; cl < clients; cl++ {
		cwg.Add(1)
		go func(cl int) {
			defer cwg.Done()
			got, err := runStream(cl)
			if err != nil {
				clientErrs <- err
				return
			}
			concurrent[cl] = got
		}(cl)
	}
	cwg.Wait()
	close(clientErrs)
	for err := range clientErrs {
		fail(err)
	}
	for cl := 0; cl < clients; cl++ {
		for i := 0; i < perClient; i++ {
			if concurrent[cl][i] != sequential[cl][i] {
				entry, args := ops(cl, i)
				fail(fmt.Errorf("concurrent client %d: %s(%v) = %v, sequential run got %v",
					cl, entry, args, concurrent[cl][i], sequential[cl][i]))
			}
		}
	}
	check("sum", 4*2000+10*0+10*1+10*2+10*3+4*(perClient-1))
	fmt.Printf("concurrent clients: %d goroutines x %d invocations matched the sequential run\n",
		clients, perClient)

	stats := cluster.Stats()
	fmt.Printf("served %d invocations: %d messages, %d payload bytes, %d cache hits (%d retained)\n",
		cluster.Invocations(), stats.Messages, stats.BytesSent, stats.CacheHits, stats.RetainedHits)

	if err := cluster.Shutdown(context.Background()); err != nil {
		fail(err)
	}
	fmt.Println("OK: resident cluster served sequential and concurrent invocations correctly")
}
